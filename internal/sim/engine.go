package sim

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"anoncover/internal/graph"
	"anoncover/internal/shard"
)

// RunPort executes port-numbering-model programs (one per node) for the
// given number of rounds and returns run statistics.  The error is
// non-nil only when the run stopped early — Options.Context cancelled,
// Options.RoundBudget exhausted (ErrRoundBudget) — or when an option
// the selected engine cannot honour was set; node outputs are unusable
// in that case.
func RunPort(top Topology, progs []PortProgram, rounds int, opt Options) (Stats, error) {
	r := &runner{top: top, port: progs, opt: opt}
	return r.run(rounds)
}

// RunBroadcast executes broadcast-model programs (one per node) for the
// given number of rounds and returns run statistics, with the same
// error contract as RunPort.
func RunBroadcast(top Topology, progs []BroadcastProgram, rounds int, opt Options) (Stats, error) {
	r := &runner{top: top, bcast: progs, opt: opt}
	return r.run(rounds)
}

// runner holds one execution; exactly one of port/bcast is non-nil.
type runner struct {
	top   Topology
	port  []PortProgram
	bcast []BroadcastProgram
	opt   Options

	// Barrier-engine state, shared by the send/receive phase bodies.
	ft    *graph.FlatTopology
	inbox []Message // one slot per half-edge, CSR-indexed (boxed path)
	round int       // current round; workers read it after the barrier

	// Port-model wire path (see wire.go); codec == nil means boxed.
	wprogs      []WirePortProgram
	codec       WireCodec
	maxW        int         // widest lane of the run, in words
	boxedRounds bool        // some rounds still travel boxed
	curW        int         // current round's lane width; 0 = boxed round
	inboxW      []uint64    // maxW words per half-edge slot
	outW        [][]uint64  // per-worker lane scratch
	dst         []int32     // flat engines: half-edge -> inbox slot (ft.WireDst)
	wireFail    atomic.Bool // a SendWire reported an unencodable value

	// Broadcast interned path (see wire.go); delivery gathers each
	// node's messages from the published per-sender values.
	interned bool
	vals     []Message   // flat engines: value published by each node
	src      []int32     // flat engines: inbox slot -> sender (ft.WireSrc)
	bscratch [][]Message // per-worker gather scratch
}

func (r *runner) n() int { return r.top.N() }

func (r *runner) isBroadcast() bool { return r.bcast != nil }

func (r *runner) checkSizes() {
	want := r.n()
	if r.port != nil && len(r.port) != want {
		panic(fmt.Sprintf("sim: %d programs for %d nodes", len(r.port), want))
	}
	if r.bcast != nil && len(r.bcast) != want {
		panic(fmt.Sprintf("sim: %d programs for %d nodes", len(r.bcast), want))
	}
}

func (r *runner) run(rounds int) (Stats, error) {
	r.checkSizes()
	if rounds < 0 {
		panic("sim: negative round count")
	}
	switch r.opt.Engine {
	case Sequential:
		return r.runBarrier(rounds, 1)
	case Parallel:
		w := r.opt.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		return r.runBarrier(rounds, w)
	case Sharded:
		k := r.opt.Workers
		if k <= 0 {
			k = runtime.GOMAXPROCS(0)
		}
		return r.runSharded(rounds, k)
	case Distributed:
		// The runner owns the round loop; per-round facilities that
		// need a global barrier are structurally unavailable (each
		// shard advances on per-pair synchronization), so reject them
		// the way the CSP engine does.  Context and RoundBudget are
		// honoured at each shard's network barrier.
		switch {
		case r.opt.Dist == nil:
			return Stats{}, errors.New("sim: Engine Distributed needs Options.Dist (a dist runner)")
		case r.opt.Observer != nil:
			return Stats{}, errors.New("sim: the Distributed engine has no global barrier to call an Observer from")
		case r.opt.Trace:
			return Stats{}, errors.New("sim: Trace is not supported by the Distributed engine (no global barrier)")
		}
		if r.port != nil {
			return r.opt.Dist.RunPort(r.top, r.port, rounds, r.opt)
		}
		return r.opt.Dist.RunBroadcast(r.top, r.bcast, rounds, r.opt)
	case CSP:
		// The CSP engine has no global barrier, so every per-round
		// facility is structurally unavailable; reject rather than
		// silently ignore.  A context that can never be cancelled
		// (Done() == nil, e.g. context.Background) needs no barrier to
		// honour and is allowed through.
		switch {
		case r.opt.Observer != nil:
			return Stats{}, errors.New("sim: the CSP engine has no round barrier to call an Observer from")
		case r.opt.Trace:
			return Stats{}, errors.New("sim: Trace is not supported by the CSP engine (no global barrier)")
		case r.opt.Context != nil && r.opt.Context.Done() != nil:
			return Stats{}, errors.New("sim: Context cancellation is not supported by the CSP engine")
		case r.opt.RoundBudget > 0:
			return Stats{}, errors.New("sim: RoundBudget is not supported by the CSP engine")
		}
		return r.runCSP(rounds), nil
	}
	return Stats{}, fmt.Errorf("sim: unknown engine %v", r.opt.Engine)
}

// count tallies one delivered message into (msgs, bytes).
func count(m Message, msgs, bytes *int64) {
	if m == nil {
		return
	}
	*msgs++
	if s, ok := m.(Sizer); ok {
		*bytes += int64(s.WireSize())
	}
}

// flatten returns the CSR view of top, reusing it when top already is
// one (e.g. the caller pre-flattened a topology shared across runs) or
// carries one (a pre-built sharded view).  A topology too large for
// int32 CSR offsets surfaces graph.ErrTooLarge as a run-level error.
func flatten(top Topology) (*graph.FlatTopology, error) {
	switch t := top.(type) {
	case *graph.FlatTopology:
		return t, nil
	case *shard.Topology:
		return t.Flat(), nil
	}
	return graph.Flatten(top)
}

// counters is one worker's message tallies, padded so adjacent workers
// do not share a cache line during the send phase.
type counters struct {
	msgs, bytes int64
	_           [48]byte
}

// sendFlat runs node v's send step and scatters the outgoing messages
// into the flat inbox.  Slot Off(h.To)+h.RevPort has exactly one writer
// per round (the half-edge's origin), so concurrent calls for distinct
// v are race-free.
func (r *runner) sendFlat(v int, msgs, bytes *int64) {
	ports := r.ft.Ports(v)
	if r.isBroadcast() {
		m := r.bcast[v].Send(r.round)
		for i := range ports {
			h := &ports[i]
			r.inbox[r.ft.Off(h.To)+h.RevPort] = m
			count(m, msgs, bytes)
		}
		return
	}
	out := r.port[v].Send(r.round)
	if len(out) != len(ports) {
		panic(fmt.Sprintf("sim: node %d sent %d messages, degree %d", v, len(out), len(ports)))
	}
	for i := range ports {
		h := &ports[i]
		r.inbox[r.ft.Off(h.To)+h.RevPort] = out[i]
		count(out[i], msgs, bytes)
	}
}

// recv runs node v's receive step for the round, scrambling broadcast
// delivery order when configured.  Shared by the barrier and CSP
// engines so delivery semantics cannot diverge between them.
func (r *runner) recv(v, round int, in []Message) {
	if r.isBroadcast() {
		if r.opt.ScrambleSeed != 0 {
			scramble(in, r.opt.ScrambleSeed, v, round)
		}
		r.bcast[v].Recv(round, in)
		return
	}
	r.port[v].Recv(round, in)
}

// recvFlat runs node v's receive step on its CSR slice of the inbox.
func (r *runner) recvFlat(v int) {
	r.recv(v, r.round, r.inbox[r.ft.Off(v):r.ft.Off(v+1)])
}

// sendWireFlat runs node v's wire-path send step: the program encodes
// one lane per port into the worker's scratch buffer and the engine
// scatters each lane to its destination slot as a plain word copy,
// routed through the topology's precomputed WireDst table.
func (r *runner) sendWireFlat(v int, out []uint64, msgs, bytes *int64) {
	w := r.curW
	base := r.ft.Off(v)
	deg := r.ft.Off(v+1) - base
	m, b, ok := r.wprogs[v].SendWire(r.round, out[:deg*w])
	if !ok {
		r.wireFail.Store(true)
		return
	}
	*msgs += m
	*bytes += b
	// Idle lanes (first word zero) are not scattered; see WirePortProgram.
	dst := r.dst[base : base+deg]
	switch w {
	case 1:
		for i, d := range dst {
			if out[i] == 0 {
				continue
			}
			r.inboxW[d] = out[i]
		}
	case 2:
		for i, d := range dst {
			if out[2*i] == 0 {
				continue
			}
			s := 2 * int(d)
			r.inboxW[s] = out[2*i]
			r.inboxW[s+1] = out[2*i+1]
		}
	case 3:
		for i, d := range dst {
			if out[3*i] == 0 {
				continue
			}
			s := 3 * int(d)
			r.inboxW[s] = out[3*i]
			r.inboxW[s+1] = out[3*i+1]
			r.inboxW[s+2] = out[3*i+2]
		}
	default:
		for i, d := range dst {
			if out[w*i] == 0 {
				continue
			}
			s := w * int(d)
			copy(r.inboxW[s:s+w], out[w*i:w*i+w])
		}
	}
}

// recvWireFlat hands node v its contiguous lane slice of the wire inbox.
func (r *runner) recvWireFlat(v int) {
	w := r.curW
	r.wprogs[v].RecvWire(r.round, r.inboxW[w*r.ft.Off(v):w*r.ft.Off(v+1)])
}

// sendInterned publishes node v's broadcast value in the per-node value
// table; no per-half-edge scatter happens at all (the receive phase
// gathers through the static sender of each slot).  The Stats tally is
// folded per node — deg copies of one message — which is exactly what
// the boxed path's per-half-edge count() sums to.
func (r *runner) sendInterned(v int, msgs, bytes *int64) {
	m := r.bcast[v].Send(r.round)
	r.vals[v] = m
	if m == nil {
		return
	}
	deg := int64(r.ft.Deg(v))
	*msgs += deg
	if s, ok := m.(Sizer); ok {
		*bytes += deg * int64(s.WireSize())
	}
}

// recvInterned gathers node v's round of messages from the published
// values through the static WireSrc sender table: the message arriving
// through port p is whatever v's neighbour on that port published.
func (r *runner) recvInterned(v int, scratch []Message) {
	base := r.ft.Off(v)
	src := r.src[base:r.ft.Off(v+1)]
	in := scratch[:len(src)]
	for p, s := range src {
		in[p] = r.vals[s]
	}
	r.recv(v, r.round, in)
}

// Phase identifiers dispatched through the worker pool.
const (
	phaseSend = iota
	phaseRecv
)

// workerPool is a persistent pool: goroutines are started once and
// re-dispatched every phase over per-worker channels, replacing the
// seed engine's 2×rounds×workers goroutine spawns.  A channel send of a
// phase id plus a WaitGroup completion is the entire per-phase barrier,
// and neither allocates, so the steady state of a run is allocation-free
// (asserted by TestEngineAllocsPerRound).  body is set per run (a
// checked-out pool outlives the run through sim.Pool); the channel send
// in dispatch publishes it to the workers.
type workerPool struct {
	body  func(w, phase int)
	start []chan int
	wg    sync.WaitGroup
}

// newWorkerPool starts `workers` goroutines that run the current body
// on dispatch.
func newWorkerPool(workers int) *workerPool {
	p := &workerPool{start: make([]chan int, workers)}
	for w := range p.start {
		p.start[w] = make(chan int, 1)
		go func(w int) {
			for phase := range p.start[w] {
				p.body(w, phase)
				p.wg.Done()
			}
		}(w)
	}
	return p
}

// dispatch runs one phase on every worker and waits for all to finish.
// The channel send happens-before the worker's execution and wg.Wait
// happens-after it, so shared state written between phases (the round
// number, the inbox) is safely published.
func (p *workerPool) dispatch(phase int) {
	p.wg.Add(len(p.start))
	for _, c := range p.start {
		c <- phase
	}
	p.wg.Wait()
}

// stop terminates the worker goroutines.
func (p *workerPool) stop() {
	for _, c := range p.start {
		close(c)
	}
}

// arenaFor checks an arena out of the run's Pool, or hands back a
// throwaway one; done returns it (and must run after the last use).
func (r *runner) arenaFor() (a *arena, done func()) {
	if p := r.opt.Pool; p != nil {
		a = p.getArena()
		return a, func() { p.putArena(a) }
	}
	return &arena{}, func() {}
}

// runBarrier is the shared implementation of the Sequential
// (workers == 1) and Parallel engines: a send phase and a receive phase
// per round, separated by pool barriers.  Delivery runs on one of three
// paths: the interned value table (broadcast), flat word lanes (wire
// port programs, per qualifying round), or the boxed CSR inbox.
func (r *runner) runBarrier(rounds, workers int) (Stats, error) {
	n := r.n()
	if workers > n && n > 0 {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	ft, err := flatten(r.top)
	if err != nil {
		return Stats{}, err
	}
	r.ft = ft
	r.interned = r.isBroadcast() && !r.opt.NoWire
	r.wireSetup(rounds)
	a, done := r.arenaFor()
	defer done()
	switch {
	case r.interned:
		r.vals = a.grabVals(n)
		r.src = r.ft.WireSrc()
		r.bscratch = a.grabScratch(workers, r.ft.MaxDeg())
	case r.codec != nil:
		r.inboxW = a.grabWords(r.maxW * r.ft.HalfEdges())
		r.outW = a.grabOut(workers, r.maxW*r.ft.MaxDeg())
		r.dst = r.ft.WireDst()
		if r.boxedRounds {
			r.inbox = a.grabInbox(r.ft.HalfEdges())
		}
	default:
		r.inbox = a.grabInbox(r.ft.HalfEdges())
	}
	counts := make([]counters, workers)
	bounds := make([]int, workers+1)
	for w := 0; w <= workers; w++ {
		bounds[w] = w * n / workers
	}
	body := func(w, phase int) {
		lo, hi := bounds[w], bounds[w+1]
		if phase == phaseSend {
			var msgs, bytes int64
			switch {
			case r.interned:
				for v := lo; v < hi; v++ {
					r.sendInterned(v, &msgs, &bytes)
				}
			case r.curW > 0:
				for v := lo; v < hi; v++ {
					r.sendWireFlat(v, r.outW[w], &msgs, &bytes)
				}
			default:
				for v := lo; v < hi; v++ {
					r.sendFlat(v, &msgs, &bytes)
				}
			}
			counts[w].msgs += msgs
			counts[w].bytes += bytes
			return
		}
		switch {
		case r.interned:
			for v := lo; v < hi; v++ {
				r.recvInterned(v, r.bscratch[w])
			}
		case r.curW > 0:
			for v := lo; v < hi; v++ {
				r.recvWireFlat(v)
			}
		default:
			for v := lo; v < hi; v++ {
				r.recvFlat(v)
			}
		}
	}
	return r.runPhases(rounds, workers, body, counts)
}

// runPhases drives the shared round loop of the barrier-family engines
// (Sequential, Parallel, Sharded): a send phase and a receive phase per
// round, dispatched over a persistent worker pool (or run inline when
// workers == 1), with optional per-round tracing, context cancellation,
// a round budget, and an observer — all evaluated at the round barrier.
// counts holds one per-worker tally that is summed into the Stats and,
// when an observer is set, fanned back in after every round.
func (r *runner) runPhases(rounds, workers int, body func(w, phase int), counts []counters) (Stats, error) {
	var pool *workerPool
	if workers > 1 {
		if p := r.opt.Pool; p != nil {
			pool = p.getWorkers(workers)
			pool.body = body
			defer r.opt.Pool.putWorkers(pool)
		} else {
			pool = newWorkerPool(workers)
			pool.body = body
			defer pool.stop()
		}
	}

	var stats Stats
	var err error
	trace := r.opt.Trace
	ctx := r.opt.Context
	budget := r.opt.RoundBudget
	observer := r.opt.Observer
	// A context deadline is checked against the wall clock directly:
	// ctx.Err() flips only when the runtime's timer goroutine fires the
	// cancellation, which a busy single-CPU process can starve for
	// milliseconds past the deadline — the barrier is the contract
	// point, so it must not serve rounds the deadline no longer covers.
	var deadline time.Time
	var hasDeadline bool
	if ctx != nil {
		deadline, hasDeadline = ctx.Deadline()
	}
	var ms runtime.MemStats
	if trace {
		stats.RoundNanos = make([]int64, 0, rounds)
		stats.RoundAllocs = make([]uint64, 0, rounds)
		stats.RoundSendNanos = make([]int64, 0, rounds)
		stats.RoundRecvNanos = make([]int64, 0, rounds)
	}
	for round := 1; round <= rounds; round++ {
		if ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				err = cerr
				break
			}
			if hasDeadline && !time.Now().Before(deadline) {
				err = context.DeadlineExceeded
				break
			}
		}
		if budget > 0 && round > budget {
			err = ErrRoundBudget
			break
		}
		r.round = round
		if r.codec != nil {
			// The round's lane width is published to the workers by the
			// same dispatch barrier that publishes the round number.
			r.curW = r.codec.WireWords(round)
		}
		var t0 time.Time
		var m0 uint64
		if trace {
			runtime.ReadMemStats(&ms)
			m0 = ms.Mallocs
			t0 = time.Now()
		}
		if pool == nil {
			body(0, phaseSend)
		} else {
			pool.dispatch(phaseSend)
		}
		var sendNS int64
		if trace {
			sendNS = time.Since(t0).Nanoseconds()
		}
		if r.codec != nil && r.wireFail.Load() {
			// A lane could not hold its value; receivers would decode
			// garbage, so stop at the phase barrier.  Program state is
			// unusable — the caller rebuilds and reruns boxed.
			err = ErrWireOverflow
			break
		}
		var t1 time.Time
		if trace {
			t1 = time.Now()
		}
		if pool == nil {
			body(0, phaseRecv)
		} else {
			pool.dispatch(phaseRecv)
		}
		stats.Rounds = round
		if trace {
			stats.RoundRecvNanos = append(stats.RoundRecvNanos, time.Since(t1).Nanoseconds())
			stats.RoundSendNanos = append(stats.RoundSendNanos, sendNS)
			stats.RoundNanos = append(stats.RoundNanos, time.Since(t0).Nanoseconds())
			runtime.ReadMemStats(&ms)
			stats.RoundAllocs = append(stats.RoundAllocs, ms.Mallocs-m0)
		}
		if observer != nil {
			info := RoundInfo{Round: round, Total: rounds}
			for w := range counts {
				info.Messages += counts[w].msgs
				info.Bytes += counts[w].bytes
			}
			observer(info)
		}
	}
	for w := range counts {
		stats.Messages += counts[w].msgs
		stats.Bytes += counts[w].bytes
	}
	return stats, err
}

// runCSP runs one goroutine per node.  Each undirected edge carries two
// cap-1 channels, one per direction.  Synchronous rounds emerge from the
// communication pattern itself (send to all ports, then receive from all
// ports): a node can run at most one round ahead of its neighbours, which
// a one-slot buffer absorbs, so the system is deadlock-free without any
// global barrier.
//
// The engine allocates its 2M channels afresh on every run and spawns a
// goroutine per node; it is deliberately kept in this naive shape as a
// semantic reference — an independently structured implementation the
// equivalence suite checks the optimized engines against — and is
// excluded from the bench matrix.
func (r *runner) runCSP(rounds int) Stats {
	n := r.n()
	maxEdge := -1
	for v := 0; v < n; v++ {
		for _, h := range r.top.Ports(v) {
			if h.Edge > maxEdge {
				maxEdge = h.Edge
			}
		}
	}
	// chans[2*e] carries low->high endpoint traffic, chans[2*e+1] the
	// reverse.
	chans := make([]chan Message, 2*(maxEdge+1))
	for i := range chans {
		chans[i] = make(chan Message, 1)
	}
	dir := func(v int, h graph.Half) int {
		if v < h.To {
			return 0
		}
		return 1
	}
	msgCounts := make([]int64, n)
	byteCounts := make([]int64, n)
	var wg sync.WaitGroup
	for v := 0; v < n; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			ports := r.top.Ports(v)
			in := make([]Message, len(ports))
			for round := 1; round <= rounds; round++ {
				if r.isBroadcast() {
					m := r.bcast[v].Send(round)
					for _, h := range ports {
						chans[2*h.Edge+dir(v, h)] <- m
						count(m, &msgCounts[v], &byteCounts[v])
					}
				} else {
					out := r.port[v].Send(round)
					if len(out) != len(ports) {
						panic(fmt.Sprintf("sim: node %d sent %d messages, degree %d", v, len(out), len(ports)))
					}
					for p, h := range ports {
						chans[2*h.Edge+dir(v, h)] <- out[p]
						count(out[p], &msgCounts[v], &byteCounts[v])
					}
				}
				for p, h := range ports {
					in[p] = <-chans[2*h.Edge+1-dir(v, h)]
				}
				r.recv(v, round, in)
			}
		}(v)
	}
	wg.Wait()
	var stats Stats
	stats.Rounds = rounds
	for v := 0; v < n; v++ {
		stats.Messages += msgCounts[v]
		stats.Bytes += byteCounts[v]
	}
	return stats
}

// Scramble permutes a broadcast round's messages exactly as the
// in-process engines do for Options.ScrambleSeed, deterministically in
// (seed, node, round).  Exported for the distributed runner, which
// replays the same permutation on the receiving worker so that a
// scrambled distributed run stays bit-identical to a scrambled
// sequential one.
func Scramble(msgs []Message, seed int64, node, round int) {
	scramble(msgs, seed, node, round)
}

// scramble permutes msgs in place, deterministically in (seed, node,
// round), to exercise the broadcast model's unordered-multiset semantics.
func scramble(msgs []Message, seed int64, node, round int) {
	s := mix64(uint64(seed) ^ mix64(uint64(node)+0x1234) ^ mix64(uint64(round)+0xabcd))
	for i := len(msgs) - 1; i > 0; i-- {
		s = mix64(s)
		j := int(s % uint64(i+1))
		msgs[i], msgs[j] = msgs[j], msgs[i]
	}
}

// mix64 is the SplitMix64 finalizer, a cheap high-quality bit mixer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
