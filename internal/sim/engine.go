package sim

import (
	"fmt"
	"runtime"
	"sync"

	"anoncover/internal/graph"
)

// RunPort executes port-numbering-model programs (one per node) for the
// given number of rounds and returns run statistics.
func RunPort(top Topology, progs []PortProgram, rounds int, opt Options) Stats {
	r := &runner{top: top, port: progs, opt: opt}
	return r.run(rounds)
}

// RunBroadcast executes broadcast-model programs (one per node) for the
// given number of rounds and returns run statistics.
func RunBroadcast(top Topology, progs []BroadcastProgram, rounds int, opt Options) Stats {
	r := &runner{top: top, bcast: progs, opt: opt}
	return r.run(rounds)
}

// runner holds one execution; exactly one of port/bcast is non-nil.
type runner struct {
	top   Topology
	port  []PortProgram
	bcast []BroadcastProgram
	opt   Options
}

func (r *runner) n() int { return r.top.N() }

func (r *runner) isBroadcast() bool { return r.bcast != nil }

func (r *runner) checkSizes() {
	want := r.n()
	if r.port != nil && len(r.port) != want {
		panic(fmt.Sprintf("sim: %d programs for %d nodes", len(r.port), want))
	}
	if r.bcast != nil && len(r.bcast) != want {
		panic(fmt.Sprintf("sim: %d programs for %d nodes", len(r.bcast), want))
	}
}

func (r *runner) run(rounds int) Stats {
	r.checkSizes()
	if rounds < 0 {
		panic("sim: negative round count")
	}
	switch r.opt.Engine {
	case Sequential:
		return r.runBarrier(rounds, 1)
	case Parallel:
		w := r.opt.Workers
		if w <= 0 {
			w = runtime.GOMAXPROCS(0)
		}
		return r.runBarrier(rounds, w)
	case CSP:
		if r.opt.OnRound != nil {
			panic("sim: OnRound hook is not supported by the CSP engine")
		}
		return r.runCSP(rounds)
	}
	panic(fmt.Sprintf("sim: unknown engine %v", r.opt.Engine))
}

// count tallies one delivered message into (msgs, bytes).
func count(m Message, msgs, bytes *int64) {
	if m == nil {
		return
	}
	*msgs++
	if s, ok := m.(Sizer); ok {
		*bytes += int64(s.WireSize())
	}
}

// sendInto runs node v's send step for the round and places the outgoing
// messages into the neighbours' inboxes.  Each inbox slot (node, port) has
// exactly one writer, so concurrent calls for distinct v are race-free.
func (r *runner) sendInto(v, round int, inbox [][]Message, msgs, bytes *int64) {
	ports := r.top.Ports(v)
	if r.isBroadcast() {
		m := r.bcast[v].Send(round)
		for _, h := range ports {
			inbox[h.To][h.RevPort] = m
			count(m, msgs, bytes)
		}
		return
	}
	out := r.port[v].Send(round)
	if len(out) != len(ports) {
		panic(fmt.Sprintf("sim: node %d sent %d messages, degree %d", v, len(out), len(ports)))
	}
	for p, h := range ports {
		inbox[h.To][h.RevPort] = out[p]
		count(out[p], msgs, bytes)
	}
}

// recvOne runs node v's receive step, scrambling broadcast delivery order
// when configured.
func (r *runner) recvOne(v, round int, in []Message) {
	if r.isBroadcast() {
		if r.opt.ScrambleSeed != 0 {
			scramble(in, r.opt.ScrambleSeed, v, round)
		}
		r.bcast[v].Recv(round, in)
		return
	}
	r.port[v].Recv(round, in)
}

// runBarrier is the shared implementation of the Sequential (workers == 1)
// and Parallel engines: a send phase and a receive phase per round,
// separated by barriers.
func (r *runner) runBarrier(rounds, workers int) Stats {
	n := r.n()
	inbox := make([][]Message, n)
	for v := 0; v < n; v++ {
		inbox[v] = make([]Message, r.top.Deg(v))
	}
	var stats Stats
	msgCounts := make([]int64, workers)
	byteCounts := make([]int64, workers)
	for round := 1; round <= rounds; round++ {
		parallelFor(n, workers, func(w, lo, hi int) {
			for v := lo; v < hi; v++ {
				r.sendInto(v, round, inbox, &msgCounts[w], &byteCounts[w])
			}
		})
		parallelFor(n, workers, func(w, lo, hi int) {
			for v := lo; v < hi; v++ {
				r.recvOne(v, round, inbox[v])
			}
		})
		if r.opt.OnRound != nil {
			r.opt.OnRound(round)
		}
	}
	stats.Rounds = rounds
	for w := 0; w < workers; w++ {
		stats.Messages += msgCounts[w]
		stats.Bytes += byteCounts[w]
	}
	return stats
}

// parallelFor splits [0, n) into `workers` contiguous ranges and runs fn
// on each; with workers == 1 it runs inline (the sequential engine).
func parallelFor(n, workers int, fn func(worker, lo, hi int)) {
	if workers <= 1 || n <= 1 {
		fn(0, 0, n)
		return
	}
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * n / workers
		hi := (w + 1) * n / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// runCSP runs one goroutine per node.  Each undirected edge carries two
// cap-1 channels, one per direction.  Synchronous rounds emerge from the
// communication pattern itself (send to all ports, then receive from all
// ports): a node can run at most one round ahead of its neighbours, which
// a one-slot buffer absorbs, so the system is deadlock-free without any
// global barrier.
func (r *runner) runCSP(rounds int) Stats {
	n := r.n()
	maxEdge := -1
	for v := 0; v < n; v++ {
		for _, h := range r.top.Ports(v) {
			if h.Edge > maxEdge {
				maxEdge = h.Edge
			}
		}
	}
	// chans[2*e] carries low->high endpoint traffic, chans[2*e+1] the
	// reverse.
	chans := make([]chan Message, 2*(maxEdge+1))
	for i := range chans {
		chans[i] = make(chan Message, 1)
	}
	dir := func(v int, h graph.Half) int {
		if v < h.To {
			return 0
		}
		return 1
	}
	msgCounts := make([]int64, n)
	byteCounts := make([]int64, n)
	var wg sync.WaitGroup
	for v := 0; v < n; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			ports := r.top.Ports(v)
			in := make([]Message, len(ports))
			for round := 1; round <= rounds; round++ {
				if r.isBroadcast() {
					m := r.bcast[v].Send(round)
					for _, h := range ports {
						chans[2*h.Edge+dir(v, h)] <- m
						count(m, &msgCounts[v], &byteCounts[v])
					}
				} else {
					out := r.port[v].Send(round)
					if len(out) != len(ports) {
						panic(fmt.Sprintf("sim: node %d sent %d messages, degree %d", v, len(out), len(ports)))
					}
					for p, h := range ports {
						chans[2*h.Edge+dir(v, h)] <- out[p]
						count(out[p], &msgCounts[v], &byteCounts[v])
					}
				}
				for p, h := range ports {
					in[p] = <-chans[2*h.Edge+1-dir(v, h)]
				}
				r.recvOne(v, round, in)
			}
		}(v)
	}
	wg.Wait()
	var stats Stats
	stats.Rounds = rounds
	for v := 0; v < n; v++ {
		stats.Messages += msgCounts[v]
		stats.Bytes += byteCounts[v]
	}
	return stats
}

// scramble permutes msgs in place, deterministically in (seed, node,
// round), to exercise the broadcast model's unordered-multiset semantics.
func scramble(msgs []Message, seed int64, node, round int) {
	s := mix64(uint64(seed) ^ mix64(uint64(node)+0x1234) ^ mix64(uint64(round)+0xabcd))
	for i := len(msgs) - 1; i > 0; i-- {
		s = mix64(s)
		j := int(s % uint64(i+1))
		msgs[i], msgs[j] = msgs[j], msgs[i]
	}
}

// mix64 is the SplitMix64 finalizer, a cheap high-quality bit mixer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
