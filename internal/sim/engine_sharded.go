package sim

import (
	"fmt"
	"runtime"

	"anoncover/internal/shard"
)

// runSharded executes the partitioned engine: the topology is split
// into k degree-balanced shards (internal/shard), pinned round-robin
// onto a persistent pool of min(k, NumCPU) workers — one worker per
// shard when the hardware has the cores, and a stable multi-shard
// assignment (worker w owns shards w, w+p, ...) when it does not, so
// oversharding degrades to locality-ordered execution instead of OS
// thread thrash.  During the send phase a worker steps only its
// shards' nodes, scattering messages through each shard's precomputed
// route table — same-shard messages go straight into the shard's
// compact local inbox, cut-edge messages into fixed-slot halo-out
// buffers with exactly one writer each.  At the phase barrier the halo
// buffers are published; the receive phase starts by draining each
// shard's incoming halo segments into its inbox and then steps its
// nodes' receive handlers.  Halo buffers are double-buffered by round
// parity (see shard.Topology).
//
// Sharding is an execution detail only: outputs and Stats are
// bit-identical to the Sequential reference engine on every program
// and every worker count (equiv_test.go pins this down).  The route
// table is also a single-thread win — scattering through a 4-byte
// route entry replaces the barrier engines' per-half-edge Half load
// plus offset lookup — so the engine pays for itself even before real
// parallelism.
func (r *runner) runSharded(rounds, k int) (Stats, error) {
	var st *shard.Topology
	if pre, ok := r.top.(*shard.Topology); ok && pre.K() == k {
		// A pre-built sharded view with a matching shard count is
		// reused, amortizing partitioning across runs the way a
		// pre-flattened *graph.FlatTopology amortizes CSR construction.
		st = pre
		r.ft = pre.Flat()
	} else {
		r.ft = flatten(r.top)
		st = shard.BuildK(r.ft, k)
	}
	k = st.K() // the partitioner clamps k for tiny topologies

	// Per-run mutable state: the shard.Topology itself is immutable
	// routing, so concurrent runs may share it.  The port model
	// exchanges per-edge halo-out buffers (each port may carry a
	// different message); the broadcast model publishes one value per
	// node and lets receivers pull it ghost-cell style, so it needs no
	// per-edge buffers at all.  Both are double-buffered by round
	// parity.  With a Pool, the whole bundle is recycled from the
	// previous run over the same topology.
	bcast := r.isBroadcast()
	var inboxes [][]Message
	var halo, bvals [2][][]Message
	if p := r.opt.Pool; p != nil {
		a := p.getArena()
		defer p.putArena(a)
		inboxes, halo, bvals = a.grabSharded(st, bcast)
	} else {
		a := &arena{}
		inboxes, halo, bvals = a.grabSharded(st, bcast)
	}
	counts := make([]counters, k)

	stepShard := func(s, phase int) {
		sh := &st.Shards[s]
		inbox := inboxes[s]
		if phase == phaseSend {
			route := sh.Route
			var msgs, bytes int64
			if bcast {
				bval := bvals[r.round&1][s]
				broute := sh.BRoute
				for i, v := range sh.Nodes {
					m := r.bcast[v].Send(r.round)
					// Publish the node's value once; cut edges are
					// pulled by the destination shard after the
					// barrier, so the scatter walks only the dense
					// local slot list, branch-free.
					bval[i] = m
					for _, rt := range broute[sh.BOff[i]:sh.BOff[i+1]] {
						inbox[rt] = m
					}
					// A broadcast node sends the one message through
					// every port; fold its Stats contribution per node
					// instead of per half-edge (totals are identical,
					// and the equivalence suite asserts so).
					if m != nil {
						deg := int64(sh.Off[i+1] - sh.Off[i])
						msgs += deg
						if sz, ok := m.(Sizer); ok {
							bytes += deg * int64(sz.WireSize())
						}
					}
				}
			} else {
				out := halo[r.round&1][s]
				for i, v := range sh.Nodes {
					outMsgs := r.port[v].Send(r.round)
					base := sh.Off[i]
					if int32(len(outMsgs)) != sh.Off[i+1]-base {
						panic(fmt.Sprintf("sim: node %d sent %d messages, degree %d",
							v, len(outMsgs), sh.Off[i+1]-base))
					}
					routes := route[base:sh.Off[i+1]]
					for p, m := range outMsgs {
						if rt := routes[p]; rt >= 0 {
							inbox[rt] = m
						} else {
							out[^rt] = m
						}
						count(m, &msgs, &bytes)
					}
				}
			}
			counts[s].msgs += msgs
			counts[s].bytes += bytes
			return
		}
		// Receive phase: drain the incoming halo segments published at
		// the barrier, then step the owned nodes.
		if bcast {
			gen := bvals[r.round&1]
			for hi := range sh.In {
				in := &sh.In[hi]
				src := gen[in.Src]
				srcNode := in.SrcNode
				for i, slot := range in.Slots {
					inbox[slot] = src[srcNode[i]]
				}
			}
		} else {
			gen := halo[r.round&1]
			for hi := range sh.In {
				in := &sh.In[hi]
				src := gen[in.Src]
				lo := int(in.Lo)
				for i, slot := range in.Slots {
					inbox[slot] = src[lo+i]
				}
			}
		}
		for i, v := range sh.Nodes {
			r.recv(int(v), r.round, inbox[sh.Off[i]:sh.Off[i+1]])
		}
	}
	// Pool size: one worker per shard, but never more than the user's
	// GOMAXPROCS and never more than the physical cores.  Exceeding
	// either just multiplexes OS threads over the same hardware, and
	// measured ~1.5x slower on a 1-core box than letting one worker
	// step several shards; the shard structure (and its locality and
	// routing wins) is identical either way.
	workers := k
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	if ncpu := runtime.NumCPU(); workers > ncpu {
		workers = ncpu
	}
	body := func(w, phase int) {
		for s := w; s < k; s += workers {
			stepShard(s, phase)
		}
	}
	return r.runPhases(rounds, workers, body, counts)
}
