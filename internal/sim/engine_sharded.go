package sim

import (
	"fmt"
	"runtime"

	"anoncover/internal/shard"
)

// runSharded executes the partitioned engine: the topology is split
// into k degree-balanced shards (internal/shard), pinned round-robin
// onto a persistent pool of min(k, NumCPU) workers — one worker per
// shard when the hardware has the cores, and a stable multi-shard
// assignment (worker w owns shards w, w+p, ...) when it does not, so
// oversharding degrades to locality-ordered execution instead of OS
// thread thrash.  During the send phase a worker steps only its
// shards' nodes, scattering messages through each shard's precomputed
// route table — same-shard messages go straight into the shard's
// compact local inbox, cut-edge messages into fixed-slot halo-out
// buffers with exactly one writer each.  At the phase barrier the halo
// buffers are published; the receive phase starts by draining each
// shard's incoming halo segments into its inbox and then steps its
// nodes' receive handlers.  Halo buffers are double-buffered by round
// parity (see shard.Topology).
//
// Delivery runs on the same three paths as the flat engines (wire.go):
//
//   - Wire port rounds scatter []uint64 word lanes through the same
//     route tables, and the halo exchange becomes plain word copies
//     into lane-striped halo buffers.
//   - Interned broadcast rounds publish one value per node (the bvals
//     tables that the ghost-cell pulls already used) and the receive
//     phase gathers every slot's message through the static BSrc
//     sender table — no per-slot scatter and no drain loop at all.
//   - Boxed rounds keep the original Message inbox, BRoute scatter and
//     halo/ghost-cell drains.
//
// Sharding is an execution detail only: outputs and Stats are
// bit-identical to the Sequential reference engine on every program,
// every worker count and every delivery path (equiv_test.go pins this
// down).  The route table is also a single-thread win — scattering
// through a 4-byte route entry replaces the barrier engines'
// per-half-edge Half load plus offset lookup — so the engine pays for
// itself even before real parallelism.
func (r *runner) runSharded(rounds, k int) (Stats, error) {
	var st *shard.Topology
	if pre, ok := r.top.(*shard.Topology); ok && pre.K() == k {
		// A pre-built sharded view with a matching shard count is
		// reused, amortizing partitioning across runs the way a
		// pre-flattened *graph.FlatTopology amortizes CSR construction.
		st = pre
		r.ft = pre.Flat()
	} else {
		ft, err := flatten(r.top)
		if err != nil {
			return Stats{}, err
		}
		r.ft = ft
		st = shard.BuildK(r.ft, k)
	}
	k = st.K() // the partitioner clamps k for tiny topologies

	// Pool size: one worker per shard, but never more than the user's
	// GOMAXPROCS and never more than the physical cores.  Exceeding
	// either just multiplexes OS threads over the same hardware, and
	// measured ~1.5x slower on a 1-core box than letting one worker
	// step several shards; the shard structure (and its locality and
	// routing wins) is identical either way.
	workers := k
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	if ncpu := runtime.NumCPU(); workers > ncpu {
		workers = ncpu
	}

	// Per-run mutable state: the shard.Topology itself is immutable
	// routing, so concurrent runs may share it.  The port model
	// exchanges per-edge halo-out buffers (each port may carry a
	// different message); the broadcast model publishes one value per
	// node and lets receivers pull it — through the ghost-cell drain on
	// the boxed path, through the static BSrc gather on the interned
	// path.  Halo-crossing state is double-buffered by round parity.
	// With a Pool, the whole bundle is recycled from the previous run
	// over the same topology.
	bcast := r.isBroadcast()
	r.interned = bcast && !r.opt.NoWire
	r.wireSetup(rounds)
	a, done := r.arenaFor()
	defer done()
	var inboxes [][]Message
	var halo, bvals [2][][]Message
	var inboxesW [][]uint64
	var haloW [2][][]uint64
	if bcast {
		inboxes, _, bvals = a.grabSharded(st, true, !r.interned)
		if r.interned {
			r.bscratch = a.grabScratch(workers, r.ft.MaxDeg())
		}
	} else {
		if r.codec == nil || r.boxedRounds {
			inboxes, halo, _ = a.grabSharded(st, false, true)
		}
		if r.codec != nil {
			inboxesW, haloW = a.grabShardedWords(st, r.maxW)
			r.outW = a.grabOut(workers, r.maxW*r.ft.MaxDeg())
		}
	}
	counts := make([]counters, k)

	stepShard := func(s, w, phase int) {
		sh := &st.Shards[s]
		if phase == phaseSend {
			var msgs, bytes int64
			switch {
			case r.interned:
				// Publish each node's value once; receivers gather it
				// through the static sender table after the barrier.
				bval := bvals[r.round&1][s]
				for i, v := range sh.Nodes {
					m := r.bcast[v].Send(r.round)
					bval[i] = m
					if m != nil {
						deg := int64(sh.Off[i+1] - sh.Off[i])
						msgs += deg
						if sz, ok := m.(Sizer); ok {
							bytes += deg * int64(sz.WireSize())
						}
					}
				}
			case bcast:
				inbox := inboxes[s]
				bval := bvals[r.round&1][s]
				broute := sh.BRoute
				for i, v := range sh.Nodes {
					m := r.bcast[v].Send(r.round)
					// Publish the node's value once; cut edges are
					// pulled by the destination shard after the
					// barrier, so the scatter walks only the dense
					// local slot list, branch-free.
					bval[i] = m
					for _, rt := range broute[sh.BOff[i]:sh.BOff[i+1]] {
						inbox[rt] = m
					}
					// A broadcast node sends the one message through
					// every port; fold its Stats contribution per node
					// instead of per half-edge (totals are identical,
					// and the equivalence suite asserts so).
					if m != nil {
						deg := int64(sh.Off[i+1] - sh.Off[i])
						msgs += deg
						if sz, ok := m.(Sizer); ok {
							bytes += deg * int64(sz.WireSize())
						}
					}
				}
			case r.curW > 0:
				// Wire round: encode lanes per node, then scatter each
				// lane as a word copy through the same route table.
				wid := r.curW
				inboxW := inboxesW[s]
				hw := haloW[r.round&1][s]
				out := r.outW[w]
				for i, v := range sh.Nodes {
					base := sh.Off[i]
					deg := int(sh.Off[i+1] - base)
					lanes := out[:deg*wid]
					m, b, ok := r.wprogs[v].SendWire(r.round, lanes)
					if !ok {
						r.wireFail.Store(true)
						return
					}
					msgs += m
					bytes += b
					// Idle lanes (first word zero) are not scattered;
					// see WirePortProgram.
					routes := sh.Route[base:sh.Off[i+1]]
					switch wid {
					case 1:
						for p, rt := range routes {
							if lanes[p] == 0 {
								continue
							}
							if rt >= 0 {
								inboxW[rt] = lanes[p]
							} else {
								hw[^rt] = lanes[p]
							}
						}
					case 2:
						for p, rt := range routes {
							if lanes[2*p] == 0 {
								continue
							}
							if rt >= 0 {
								inboxW[2*rt] = lanes[2*p]
								inboxW[2*rt+1] = lanes[2*p+1]
							} else {
								hw[2*^rt] = lanes[2*p]
								hw[2*^rt+1] = lanes[2*p+1]
							}
						}
					case 3:
						for p, rt := range routes {
							if lanes[3*p] == 0 {
								continue
							}
							d := 3 * int(rt)
							buf := inboxW
							if rt < 0 {
								d = 3 * int(^rt)
								buf = hw
							}
							buf[d] = lanes[3*p]
							buf[d+1] = lanes[3*p+1]
							buf[d+2] = lanes[3*p+2]
						}
					default:
						for p, rt := range routes {
							if lanes[wid*p] == 0 {
								continue
							}
							lane := lanes[wid*p : wid*p+wid]
							if rt >= 0 {
								copy(inboxW[wid*int(rt):], lane)
							} else {
								copy(hw[wid*int(^rt):], lane)
							}
						}
					}
				}
			default:
				inbox := inboxes[s]
				route := sh.Route
				out := halo[r.round&1][s]
				for i, v := range sh.Nodes {
					outMsgs := r.port[v].Send(r.round)
					base := sh.Off[i]
					if int32(len(outMsgs)) != sh.Off[i+1]-base {
						panic(fmt.Sprintf("sim: node %d sent %d messages, degree %d",
							v, len(outMsgs), sh.Off[i+1]-base))
					}
					routes := route[base:sh.Off[i+1]]
					for p, m := range outMsgs {
						if rt := routes[p]; rt >= 0 {
							inbox[rt] = m
						} else {
							out[^rt] = m
						}
						count(m, &msgs, &bytes)
					}
				}
			}
			counts[s].msgs += msgs
			counts[s].bytes += bytes
			return
		}
		// Receive phase.
		switch {
		case r.interned:
			// Gather every slot's message straight from the publishing
			// shard's value table; BSrc already routes cut edges, so
			// there is no halo drain.
			gen := bvals[r.round&1]
			scratch := r.bscratch[w]
			for i, v := range sh.Nodes {
				base := int(sh.Off[i])
				deg := int(sh.Off[i+1]) - base
				in := scratch[:deg]
				for p := 0; p < deg; p++ {
					e := sh.BSrc[base+p]
					in[p] = gen[e>>32][uint32(e)]
				}
				r.recv(int(v), r.round, in)
			}
		case bcast:
			inbox := inboxes[s]
			gen := bvals[r.round&1]
			for hi := range sh.In {
				in := &sh.In[hi]
				src := gen[in.Src]
				srcNode := in.SrcNode
				for i, slot := range in.Slots {
					inbox[slot] = src[srcNode[i]]
				}
			}
			for i, v := range sh.Nodes {
				r.recv(int(v), r.round, inbox[sh.Off[i]:sh.Off[i+1]])
			}
		case r.curW > 0:
			// Wire round: drain the incoming halo segments as word
			// copies, then hand each node its contiguous lane slice.
			wid := r.curW
			inboxW := inboxesW[s]
			gen := haloW[r.round&1]
			for hi := range sh.In {
				in := &sh.In[hi]
				src := gen[in.Src]
				lo := int(in.Lo)
				switch wid {
				case 1:
					for i, slot := range in.Slots {
						inboxW[slot] = src[lo+i]
					}
				case 2:
					for i, slot := range in.Slots {
						d, o := 2*int(slot), 2*(lo+i)
						inboxW[d] = src[o]
						inboxW[d+1] = src[o+1]
					}
				default:
					for i, slot := range in.Slots {
						o := wid * (lo + i)
						copy(inboxW[wid*int(slot):wid*int(slot)+wid], src[o:o+wid])
					}
				}
			}
			for i, v := range sh.Nodes {
				r.wprogs[v].RecvWire(r.round, inboxW[wid*int(sh.Off[i]):wid*int(sh.Off[i+1])])
			}
		default:
			inbox := inboxes[s]
			gen := halo[r.round&1]
			for hi := range sh.In {
				in := &sh.In[hi]
				src := gen[in.Src]
				lo := int(in.Lo)
				for i, slot := range in.Slots {
					inbox[slot] = src[lo+i]
				}
			}
			for i, v := range sh.Nodes {
				r.recv(int(v), r.round, inbox[sh.Off[i]:sh.Off[i+1]])
			}
		}
	}
	body := func(w, phase int) {
		for s := w; s < k; s += workers {
			stepShard(s, w, phase)
		}
	}
	return r.runPhases(rounds, workers, body, counts)
}
