package sim_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"anoncover/internal/bipartite"
	"anoncover/internal/core/bcastvc"
	"anoncover/internal/core/edgepack"
	"anoncover/internal/core/fracpack"
	"anoncover/internal/dist"
	"anoncover/internal/graph"
	"anoncover/internal/rational"
	"anoncover/internal/selfstab"
	"anoncover/internal/shard"
	"anoncover/internal/sim"
)

// This file is the cross-engine equivalence suite: for every algorithm
// package in the repo it asserts that the Sequential reference engine,
// the Parallel engine at several pool sizes, the Sharded
// partitioned-graph engine at several shard counts, and the CSP engine
// produce bit-identical outputs and identical message/byte statistics,
// across multiple graph families and broadcast scramble seeds.  It is the
// contract that lets the engines be rewritten for speed (as PR 1 did)
// without touching algorithm code.  (The colour package is a pure
// library with no engine dependence; it is exercised here through
// edgepack and bcastvc, which both run Cole–Vishkin colour reduction
// internally.)  CI runs `go test -run Equiv ./internal/sim/` as a fast
// gate plus the full `go test -race ./...` on every push.

// engineVariant is one engine configuration under test.  The barrier
// engines appear twice: once on their default delivery path (the wire
// path — word lanes for qualifying port programs, interned value
// tables for broadcast) and once forced onto the boxed path, so the
// matrices pin wire and boxed rows against each other and against the
// CSP oracle, which is always boxed.
type engineVariant struct {
	name    string
	engine  sim.Engine
	workers int
	noWire  bool
	dist    sim.DistRunner
}

func engineVariants() []engineVariant {
	return []engineVariant{
		{"sequential", sim.Sequential, 0, false, nil},
		{"sequential-boxed", sim.Sequential, 0, true, nil},
		{"parallel-2", sim.Parallel, 2, false, nil},
		{"parallel-2-boxed", sim.Parallel, 2, true, nil},
		{fmt.Sprintf("parallel-%d", runtime.GOMAXPROCS(0)), sim.Parallel, runtime.GOMAXPROCS(0), false, nil},
		{"sharded-2", sim.Sharded, 2, false, nil},
		{"sharded-4", sim.Sharded, 4, false, nil},
		{"sharded-4-boxed", sim.Sharded, 4, true, nil},
		{"csp", sim.CSP, 0, false, nil},
		// Distributed rows run the loopback cluster: in-process shard
		// workers exchanging halo frames over real 127.0.0.1 sockets,
		// so the multi-process wire path sits inside the same
		// bit-identity contract as the in-memory engines.
		{"distributed-2", sim.Distributed, 0, false, distCluster(2)},
		{"distributed-2-boxed", sim.Distributed, 0, true, distCluster(2)},
		{"distributed-3", sim.Distributed, 0, false, distCluster(3)},
	}
}

// distClusters are shared across the suite: a cluster holds no sockets
// between runs (each run dials its own mesh) and serializes runs, so
// reuse is safe and keeps the matrix readable.
var (
	distClustersMu sync.Mutex
	distClusters   = map[int]*dist.Cluster{}
)

func distCluster(k int) *dist.Cluster {
	distClustersMu.Lock()
	defer distClustersMu.Unlock()
	if c := distClusters[k]; c != nil {
		return c
	}
	c := dist.NewCluster(k)
	distClusters[k] = c
	return c
}

var scrambleSeeds = []int64{1, 42, 9999}

// vcFamilies are the vertex-cover graph families: a grid, a random
// regular graph, a power-law graph and a bounded-degree random graph,
// all weighted.
func vcFamilies() map[string]*graph.G {
	fams := map[string]*graph.G{
		"grid-6x7":     graph.Grid(6, 7),
		"regular-40-4": graph.RandomRegular(40, 4, 11),
		"powerlaw-45":  graph.PowerLaw(45, 2, 12),
		"bounded-50":   graph.RandomBoundedDegree(50, 100, 6, 13),
	}
	for name, g := range fams {
		graph.RandomWeights(g, 25, int64(len(name)))
	}
	return fams
}

// scFamilies are the set-cover instance families: random instances at
// two (f, k) shapes, the incidence instance of a graph, and the
// fully-symmetric lower-bound instance.
func scFamilies() map[string]*bipartite.Instance {
	inc := graph.RandomBoundedDegree(14, 24, 4, 21)
	graph.RandomWeights(inc, 9, 22)
	return map[string]*bipartite.Instance{
		"random-f2k5":  bipartite.Random(10, 22, 2, 5, 9, 23),
		"random-f3k6":  bipartite.Random(12, 28, 3, 6, 9, 24),
		"incidence":    bipartite.FromGraph(inc),
		"symmetric-k5": bipartite.SymmetricKpp(5),
	}
}

// mustEqualStats asserts the engine-independent Stats fields agree.
func mustEqualStats(t *testing.T, ref, got sim.Stats) {
	t.Helper()
	if got.Rounds != ref.Rounds || got.Messages != ref.Messages || got.Bytes != ref.Bytes {
		t.Fatalf("stats diverge: rounds %d/%d, messages %d/%d, bytes %d/%d",
			got.Rounds, ref.Rounds, got.Messages, ref.Messages, got.Bytes, ref.Bytes)
	}
}

func mustEqualCover(t *testing.T, ref, got []bool) {
	t.Helper()
	for v := range ref {
		if got[v] != ref[v] {
			t.Fatalf("cover diverges at node %d: %v != %v", v, got[v], ref[v])
		}
	}
}

func mustEqualRats(t *testing.T, what string, ref, got []rational.Rat) {
	t.Helper()
	for i := range ref {
		if !got[i].Equal(ref[i]) {
			t.Fatalf("%s diverges at %d: %v != %v", what, i, got[i], ref[i])
		}
	}
}

// TestEquivEdgepack: the Section 3 port-model vertex cover algorithm
// must be engine-independent in outputs and message statistics.
func TestEquivEdgepack(t *testing.T) {
	for name, g := range vcFamilies() {
		t.Run(name, func(t *testing.T) {
			ref := edgepack.MustRun(g, edgepack.Options{Engine: sim.Sequential})
			for _, ev := range engineVariants() {
				t.Run(ev.name, func(t *testing.T) {
					got := edgepack.MustRun(g, edgepack.Options{Engine: ev.engine, Workers: ev.workers, NoWire: ev.noWire, Dist: ev.dist})
					mustEqualCover(t, ref.Cover, got.Cover)
					mustEqualRats(t, "edge packing y", ref.Y, got.Y)
					mustEqualStats(t, ref.Stats, got.Stats)
				})
			}
		})
	}
}

// bcastFamilies are smaller than vcFamilies with Δ capped at 4: the
// broadcast-model algorithm simulates the set-cover machinery over
// growing message histories, so its cost explodes in Δ and W (the
// paper's Section 5 trades message size for anonymity; experiment e10
// runs it at n=12, and a single Δ=6 power-law hub costs minutes).
func bcastFamilies() map[string]*graph.G {
	fams := map[string]*graph.G{
		"grid-3x4":        graph.Grid(3, 4),
		"regular-12-3":    graph.RandomRegular(12, 3, 31),
		"caterpillar-4x2": graph.Caterpillar(4, 2),
		"bounded-14":      graph.RandomBoundedDegree(14, 18, 4, 33),
	}
	for name, g := range fams {
		graph.RandomWeights(g, 6, int64(len(name)))
	}
	return fams
}

// TestEquivBcastvc: the Section 5 broadcast-model vertex cover
// algorithm, additionally across delivery-order scramble seeds (correct
// broadcast programs may not depend on delivery order).
func TestEquivBcastvc(t *testing.T) {
	for name, g := range bcastFamilies() {
		t.Run(name, func(t *testing.T) {
			ref := bcastvc.MustRun(g, bcastvc.Options{Engine: sim.Sequential})
			for _, ev := range engineVariants() {
				for _, seed := range scrambleSeeds {
					t.Run(fmt.Sprintf("%s/seed%d", ev.name, seed), func(t *testing.T) {
						got := bcastvc.MustRun(g, bcastvc.Options{
							Engine: ev.engine, Workers: ev.workers, ScrambleSeed: seed, NoWire: ev.noWire, Dist: ev.dist,
						})
						mustEqualCover(t, ref.Cover, got.Cover)
						mustEqualRats(t, "edge y", ref.Y, got.Y)
						mustEqualStats(t, ref.Stats, got.Stats)
						if got.MaxMsgBytes != ref.MaxMsgBytes {
							t.Fatalf("max message bytes %d != %d", got.MaxMsgBytes, ref.MaxMsgBytes)
						}
					})
				}
			}
		})
	}
}

// TestEquivFracpack: the Section 4 set-cover algorithm on bipartite
// instances, across engines and scramble seeds.
func TestEquivFracpack(t *testing.T) {
	for name, ins := range scFamilies() {
		t.Run(name, func(t *testing.T) {
			ref := fracpack.MustRun(ins, fracpack.Options{Engine: sim.Sequential})
			for _, ev := range engineVariants() {
				for _, seed := range scrambleSeeds {
					t.Run(fmt.Sprintf("%s/seed%d", ev.name, seed), func(t *testing.T) {
						got := fracpack.MustRun(ins, fracpack.Options{
							Engine: ev.engine, Workers: ev.workers, ScrambleSeed: seed, NoWire: ev.noWire, Dist: ev.dist,
						})
						mustEqualCover(t, ref.Cover, got.Cover)
						mustEqualRats(t, "element y", ref.Y, got.Y)
						mustEqualStats(t, ref.Stats, got.Stats)
					})
				}
			}
		})
	}
}

// TestEquivFlatTopologyAsInput: passing a pre-flattened CSR topology to
// the engines must be indistinguishable from passing the original graph
// — same outputs, same statistics.
func TestEquivFlatTopologyAsInput(t *testing.T) {
	for name, g := range vcFamilies() {
		t.Run(name, func(t *testing.T) {
			params := sim.GraphParams(g)
			envs := sim.GraphEnvs(g, params)
			run := func(top sim.Topology, ev engineVariant) ([]any, sim.Stats) {
				progs := make([]sim.PortProgram, g.N())
				nodes := make([]*edgepack.Program, g.N())
				for v := range progs {
					nodes[v] = edgepack.New(envs[v])
					progs[v] = nodes[v]
				}
				stats, err := sim.RunPort(top, progs, edgepack.Rounds(params), sim.Options{
					Engine: ev.engine, Workers: ev.workers, NoWire: ev.noWire, Dist: ev.dist,
				})
				if err != nil {
					t.Fatal(err)
				}
				outs := make([]any, g.N())
				for v := range outs {
					outs[v] = nodes[v].Output()
				}
				return outs, stats
			}
			refOut, refStats := run(g, engineVariant{engine: sim.Sequential})
			flat := g.Flat()
			for _, ev := range engineVariants() {
				t.Run(ev.name, func(t *testing.T) {
					gotOut, gotStats := run(flat, ev)
					mustEqualStats(t, refStats, gotStats)
					for v := range refOut {
						if fmt.Sprintf("%v", gotOut[v]) != fmt.Sprintf("%v", refOut[v]) {
							t.Fatalf("node %d output diverges on flat topology", v)
						}
					}
				})
			}
		})
	}
}

// TestEquivShardedTopologyAsInput: passing a pre-built sharded view to
// the engines must be indistinguishable from passing the original graph
// — the sharded engine reuses its partition and routing, every other
// engine sees it as a plain port structure.
func TestEquivShardedTopologyAsInput(t *testing.T) {
	for name, g := range vcFamilies() {
		t.Run(name, func(t *testing.T) {
			ref := edgepack.MustRun(g, edgepack.Options{Engine: sim.Sequential})
			st := shard.BuildK(g.Flat(), 4)
			params := sim.GraphParams(g)
			envs := sim.GraphEnvs(g, params)
			for _, ev := range engineVariants() {
				t.Run(ev.name, func(t *testing.T) {
					progs := make([]sim.PortProgram, g.N())
					nodes := make([]*edgepack.Program, g.N())
					for v := range progs {
						nodes[v] = edgepack.New(envs[v])
						progs[v] = nodes[v]
					}
					stats, err := sim.RunPort(st, progs, edgepack.Rounds(params), sim.Options{
						Engine: ev.engine, Workers: ev.workers, NoWire: ev.noWire, Dist: ev.dist,
					})
					if err != nil {
						t.Fatal(err)
					}
					mustEqualStats(t, ref.Stats, stats)
					for v := range nodes {
						nr := nodes[v].Output().(edgepack.NodeResult)
						if nr.InCover != ref.Cover[v] {
							t.Fatalf("node %d cover bit diverges on sharded topology", v)
						}
					}
				})
			}
		})
	}
}

// TestEquivSelfstab: the self-stabilising transformation (which steps
// nodes through its own scheduler rather than the sim engines) must
// converge to exactly the output the engine-executed algorithm
// computes, on every family.  This ties the selfstab and colour
// packages into the equivalence contract.
func TestEquivSelfstab(t *testing.T) {
	for name, g := range vcFamilies() {
		t.Run(name, func(t *testing.T) {
			params := sim.GraphParams(g)
			envs := sim.GraphEnvs(g, params)
			factories := make([]selfstab.Factory, g.N())
			for v := range factories {
				env := envs[v]
				factories[v] = func() sim.PortProgram { return edgepack.New(env) }
			}
			// The reference runs on the Distributed engine, so the
			// self-stabilised outputs are pinned directly against the
			// multi-process wire path (which TestEquivEdgepack in turn
			// pins against Sequential).
			ref := edgepack.MustRun(g, edgepack.Options{Engine: sim.Distributed, Dist: distCluster(2)})
			outs := selfstab.Run(g, edgepack.Rounds(params), factories)
			for v, out := range outs {
				nr, ok := out.(edgepack.NodeResult)
				if !ok {
					t.Fatalf("node %d: unexpected output %T", v, out)
				}
				if nr.InCover != ref.Cover[v] {
					t.Fatalf("node %d: self-stabilised cover bit %v != engine %v",
						v, nr.InCover, ref.Cover[v])
				}
			}
		})
	}
}
