package sim

import (
	"math/rand"
	"testing"

	"anoncover/internal/graph"
)

// chaosProg is a deterministic but arbitrary-looking program: each round
// it sends mixes of its evolving state and occasionally nil, and folds
// whatever it receives back into the state.  Engines must agree exactly
// on the final states, whatever the program does.
type chaosProg struct {
	deg   int
	state uint64
}

func (p *chaosProg) Init(env Env) {}

func (p *chaosProg) fold(x uint64) { p.state = mix64(p.state ^ x) }

func (p *chaosProg) Send(r int) []Message {
	out := make([]Message, p.deg)
	for q := range out {
		v := mix64(p.state ^ uint64(r)<<32 ^ uint64(q))
		if v%7 == 0 {
			out[q] = nil // exercise idle messages
		} else {
			out[q] = v
		}
	}
	return out
}

func (p *chaosProg) Recv(r int, msgs []Message) {
	for q, m := range msgs {
		if m == nil {
			p.fold(uint64(q) + 0xdead)
			continue
		}
		p.fold(m.(uint64) + uint64(q)<<48)
	}
}

func (p *chaosProg) Output() any { return p.state }

// chaosBcast is the broadcast sibling; it must be order-insensitive, so
// it folds received values commutatively (sum and xor).
type chaosBcast struct {
	deg        int
	state      uint64
	sum, xored uint64
}

func (p *chaosBcast) Init(env Env) {}

func (p *chaosBcast) Send(r int) Message {
	v := mix64(p.state ^ uint64(r))
	if v%5 == 0 {
		return nil
	}
	return v
}

func (p *chaosBcast) Recv(r int, msgs []Message) {
	for _, m := range msgs {
		if m == nil {
			p.sum += 1
			continue
		}
		p.sum += m.(uint64)
		p.xored ^= m.(uint64)
	}
	p.state = mix64(p.state ^ p.sum ^ p.xored)
}

func (p *chaosBcast) Output() any { return p.state }

// TestEngineFuzzPortModel runs arbitrary deterministic programs on
// random topologies under every engine and demands identical outputs.
func TestEngineFuzzPortModel(t *testing.T) {
	r := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 15; trial++ {
		n := 5 + r.Intn(40)
		maxDeg := 2 + r.Intn(5)
		m := r.Intn(n*maxDeg/3 + 1)
		g := graph.RandomBoundedDegree(n, m, maxDeg, int64(trial))
		rounds := 1 + r.Intn(12)
		seeds := make([]uint64, n)
		for v := range seeds {
			seeds[v] = r.Uint64()
		}
		run := func(opt Options) []uint64 {
			progs := make([]PortProgram, n)
			nodes := make([]*chaosProg, n)
			for v := range progs {
				nodes[v] = &chaosProg{deg: g.Deg(v), state: seeds[v]}
				progs[v] = nodes[v]
			}
			RunPort(g, progs, rounds, opt)
			out := make([]uint64, n)
			for v := range out {
				out[v] = nodes[v].state
			}
			return out
		}
		ref := run(Options{Engine: Sequential})
		for _, opt := range []Options{
			{Engine: Parallel},
			{Engine: CSP},
			{Engine: Sharded, Workers: 2},
			{Engine: Sharded, Workers: 5},
		} {
			got := run(opt)
			for v := range ref {
				if got[v] != ref[v] {
					t.Fatalf("trial %d engine %v/%d: node %d state %x != %x",
						trial, opt.Engine, opt.Workers, v, got[v], ref[v])
				}
			}
		}
	}
}

// TestEngineFuzzBroadcast does the same in the broadcast model, across
// engines and scramble seeds.
func TestEngineFuzzBroadcast(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 12; trial++ {
		n := 5 + r.Intn(30)
		maxDeg := 2 + r.Intn(4)
		m := r.Intn(n*maxDeg/3 + 1)
		g := graph.RandomBoundedDegree(n, m, maxDeg, int64(trial+100))
		rounds := 1 + r.Intn(10)
		seeds := make([]uint64, n)
		for v := range seeds {
			seeds[v] = r.Uint64()
		}
		run := func(eng Engine, scramble int64) []uint64 {
			progs := make([]BroadcastProgram, n)
			nodes := make([]*chaosBcast, n)
			for v := range progs {
				nodes[v] = &chaosBcast{deg: g.Deg(v), state: seeds[v]}
				progs[v] = nodes[v]
			}
			RunBroadcast(g, progs, rounds, Options{Engine: eng, ScrambleSeed: scramble})
			out := make([]uint64, n)
			for v := range out {
				out[v] = nodes[v].state
			}
			return out
		}
		ref := run(Sequential, 0)
		for _, eng := range []Engine{Sequential, Parallel, Sharded, CSP} {
			for _, scr := range []int64{0, 1, 999} {
				got := run(eng, scr)
				for v := range ref {
					if got[v] != ref[v] {
						t.Fatalf("trial %d engine %v scramble %d: node %d differs",
							trial, eng, scr, v)
					}
				}
			}
		}
	}
}
