package sim

import (
	"sync"

	"anoncover/internal/shard"
)

// maxIdleWorkerPools bounds how many idle persistent worker pools a Pool
// parks between runs.  Concurrent runs each check one out, so the bound
// only matters after a burst of concurrency subsides; surplus pools are
// simply stopped.
const maxIdleWorkerPools = 16

// Pool is a reusable execution context shared by many runs: persistent
// worker pools (goroutines spawned once and re-dispatched run after run)
// and recycled per-run arenas (the O(E) inbox and halo buffers).  A
// compiled solver session holds one Pool so that serving a run costs
// only the rounds themselves, not the per-call setup.
//
// A Pool is safe for concurrent use: every run checks resources out
// under a lock (worker pools) or through a sync.Pool (arenas) and
// returns them when done, so concurrent runs never share mutable state.
// Close stops the idle worker goroutines; it is safe to call
// concurrently with in-flight runs, whose pools are stopped on release
// instead of being parked.
type Pool struct {
	mu     sync.Mutex
	idle   []*workerPool
	closed bool
	arenas sync.Pool // *arena
}

// NewPool returns an empty Pool.
func NewPool() *Pool { return &Pool{} }

// getWorkers checks out an idle persistent pool of exactly n workers,
// or starts a fresh one.
func (p *Pool) getWorkers(n int) *workerPool {
	p.mu.Lock()
	for i, wp := range p.idle {
		if len(wp.start) == n {
			last := len(p.idle) - 1
			p.idle[i] = p.idle[last]
			p.idle = p.idle[:last]
			p.mu.Unlock()
			return wp
		}
	}
	p.mu.Unlock()
	return newWorkerPool(n)
}

// putWorkers parks a pool for reuse, or stops it when the Pool is
// closed or already holds enough idle pools.
func (p *Pool) putWorkers(wp *workerPool) {
	wp.body = nil
	p.mu.Lock()
	if p.closed || len(p.idle) >= maxIdleWorkerPools {
		p.mu.Unlock()
		wp.stop()
		return
	}
	p.idle = append(p.idle, wp)
	p.mu.Unlock()
}

// getArena checks out a per-run arena (possibly one recycled from an
// earlier run over the same topology, in which case its buffers are
// reused without reallocation).
func (p *Pool) getArena() *arena {
	if a, ok := p.arenas.Get().(*arena); ok {
		return a
	}
	return &arena{}
}

// putArena scrubs the arena's message references — a parked arena must
// not pin a finished run's payloads — and returns it for reuse.
func (p *Pool) putArena(a *arena) {
	a.scrub()
	p.arenas.Put(a)
}

// Close stops all idle worker pools and marks the Pool closed, so pools
// released by in-flight runs are stopped rather than parked.  Close is
// idempotent; runs started after Close still work, paying the per-run
// spawn cost again.
func (p *Pool) Close() {
	p.mu.Lock()
	idle := p.idle
	p.idle = nil
	p.closed = true
	p.mu.Unlock()
	for _, wp := range idle {
		wp.stop()
	}
}

// arena holds one run's worth of engine-owned buffers.  Every slot of
// every buffer is written before it is read within each round (the send
// phase fills the inboxes and halo buffers the receive phase drains),
// so recycled contents are never observed and the buffers need no
// clearing on reuse — only on release, to unpin the old run's messages.
// The word buffers of the wire path hold no pointers and are skipped by
// the release scrub entirely.
type arena struct {
	// Barrier engines: the flat CSR inbox (boxed path), the word-lane
	// inbox (wire path) and the interned broadcast value table.
	inbox  []Message
	words  []uint64
	vals   []Message
	out    [][]uint64  // per-worker wire lane scratch
	gather [][]Message // per-worker interned gather scratch

	// Sharded engine, valid only for the (topology, model, shape)
	// triple it was last shaped for.
	st       *shard.Topology
	bcast    bool
	hasInbox bool
	inboxes  [][]Message
	halo     [2][][]Message
	bvals    [2][][]Message
	stW      *shard.Topology // wire-path buffers' topology
	stWords  int             // ... and their per-slot word capacity
	inboxesW [][]uint64
	haloW    [2][][]uint64
}

// grabInbox returns a flat inbox of exactly n slots, reusing the
// arena's buffer when it is large enough.
func (a *arena) grabInbox(n int) []Message {
	if cap(a.inbox) >= n {
		a.inbox = a.inbox[:n]
	} else {
		a.inbox = make([]Message, n)
	}
	return a.inbox
}

// grabWords returns a word-lane buffer of exactly n words, zeroed: the
// idle-lane convention (WirePortProgram) distinguishes live lanes from
// stale slots by round stamps, and a recycled buffer could otherwise
// replay a previous run's stamps at the same round numbers.
func (a *arena) grabWords(n int) []uint64 {
	if cap(a.words) >= n {
		a.words = a.words[:n]
		clear(a.words)
	} else {
		a.words = make([]uint64, n)
	}
	return a.words
}

// grabVals returns the interned broadcast value table (one slot per
// node).
func (a *arena) grabVals(n int) []Message {
	if cap(a.vals) >= n {
		a.vals = a.vals[:n]
	} else {
		a.vals = make([]Message, n)
	}
	return a.vals
}

// grabOut returns per-worker lane scratch, each of size words.
func (a *arena) grabOut(workers, size int) [][]uint64 {
	if len(a.out) != workers {
		a.out = make([][]uint64, workers)
	}
	for w := range a.out {
		if cap(a.out[w]) < size {
			a.out[w] = make([]uint64, size)
		} else {
			a.out[w] = a.out[w][:size]
		}
	}
	return a.out
}

// grabScratch returns per-worker gather scratch of deg message slots.
func (a *arena) grabScratch(workers, deg int) [][]Message {
	if len(a.gather) != workers {
		a.gather = make([][]Message, workers)
	}
	for w := range a.gather {
		if cap(a.gather[w]) < deg {
			a.gather[w] = make([]Message, deg)
		} else {
			a.gather[w] = a.gather[w][:deg]
		}
	}
	return a.gather
}

// grabSharded returns the per-shard inboxes and double-buffered halo
// buffers for st, reusing the previous run's buffers when the arena was
// last shaped for the same topology and model.  withInbox is false for
// the interned broadcast path, which delivers straight out of the
// published value tables and needs no per-shard inboxes at all.
func (a *arena) grabSharded(st *shard.Topology, bcast, withInbox bool) (inboxes [][]Message, halo, bvals [2][][]Message) {
	if a.st == st && a.bcast == bcast && (a.hasInbox || !withInbox) {
		return a.inboxes, a.halo, a.bvals
	}
	k := st.K()
	a.st, a.bcast, a.hasInbox = st, bcast, withInbox
	a.inboxes = make([][]Message, k)
	for gen := 0; gen < 2; gen++ {
		a.halo[gen] = make([][]Message, k)
		a.bvals[gen] = make([][]Message, k)
	}
	for s := 0; s < k; s++ {
		sh := &st.Shards[s]
		if withInbox {
			a.inboxes[s] = make([]Message, sh.InboxLen())
		}
		for gen := 0; gen < 2; gen++ {
			if bcast {
				a.bvals[gen][s] = make([]Message, len(sh.Nodes))
			} else {
				a.halo[gen][s] = make([]Message, sh.HaloOut)
			}
		}
	}
	return a.inboxes, a.halo, a.bvals
}

// grabShardedWords returns the per-shard word-lane inboxes and
// double-buffered halo-out word buffers, sized for lanes of maxW words
// per slot and zeroed for the same reason grabWords zeroes.
func (a *arena) grabShardedWords(st *shard.Topology, maxW int) (inboxesW [][]uint64, haloW [2][][]uint64) {
	if a.stW == st && a.stWords >= maxW {
		for _, b := range a.inboxesW {
			clear(b)
		}
		for gen := 0; gen < 2; gen++ {
			for _, b := range a.haloW[gen] {
				clear(b)
			}
		}
		return a.inboxesW, a.haloW
	}
	k := st.K()
	a.stW, a.stWords = st, maxW
	a.inboxesW = make([][]uint64, k)
	for gen := 0; gen < 2; gen++ {
		a.haloW[gen] = make([][]uint64, k)
	}
	for s := 0; s < k; s++ {
		sh := &st.Shards[s]
		a.inboxesW[s] = make([]uint64, maxW*sh.InboxLen())
		for gen := 0; gen < 2; gen++ {
			a.haloW[gen][s] = make([]uint64, maxW*sh.HaloOut)
		}
	}
	return a.inboxesW, a.haloW
}

// scrub drops every message reference so a parked arena does not keep a
// finished run's payloads (broadcast histories can be large) alive.
// Word buffers carry no references and are left as they are.
func (a *arena) scrub() {
	clearMsgs(a.inbox)
	clearMsgs(a.vals)
	for _, in := range a.gather {
		clearMsgs(in)
	}
	for _, in := range a.inboxes {
		clearMsgs(in)
	}
	for gen := 0; gen < 2; gen++ {
		for _, b := range a.halo[gen] {
			clearMsgs(b)
		}
		for _, b := range a.bvals[gen] {
			clearMsgs(b)
		}
	}
}

func clearMsgs(s []Message) {
	for i := range s {
		s[i] = nil
	}
}
