package sim

import "sync"

// Resettable is the pooling protocol of the per-node algorithm
// programs: Reset re-initializes a program for a fresh run in the
// given environment, reusing every buffer the previous run allocated
// when the shape still fits.
type Resettable interface {
	Reset(Env)
}

// maxIdleProgSlabs bounds how many idle slabs a ProgPool parks between
// runs; concurrent runs each check one out, so the bound only matters
// after a concurrency burst subsides.
const maxIdleProgSlabs = 8

// ProgPool recycles per-run program slabs through the Reset protocol.
// Get hands out one program per environment — recycling a parked slab
// of matching size, Reset for its new environment, or building fresh
// programs through the constructor — and Put parks a slab for the next
// run.  Slabs are matched by length only: Reset must therefore cope
// with any shape change the same node count can carry (degrees,
// parameters), which the program packages' Reset implementations and
// their TestProgramPoolReuse tests guarantee.  Safe for concurrent
// use; the caller must not touch a slab after Put.
//
// The algorithm packages (edgepack, fracpack, bcastvc) wrap one under
// their ProgramPool names; a compiled Solver holds one per algorithm
// so serving a run skips the per-node setup allocations.
type ProgPool[T Resettable] struct {
	mu   sync.Mutex
	free [][]T
}

// Get returns one program per environment, Reset and ready to run.
func (pl *ProgPool[T]) Get(envs []Env, fresh func(Env) T) []T {
	var ps []T
	pl.mu.Lock()
	for i, s := range pl.free {
		if len(s) == len(envs) {
			last := len(pl.free) - 1
			pl.free[i] = pl.free[last]
			pl.free = pl.free[:last]
			ps = s
			break
		}
	}
	pl.mu.Unlock()
	if ps == nil {
		ps = make([]T, len(envs))
		for i := range ps {
			ps[i] = fresh(envs[i])
		}
		return ps
	}
	for i := range ps {
		ps[i].Reset(envs[i])
	}
	return ps
}

// Put parks a slab for reuse.  The programs may be in any state — Get
// resets them before the next run.
func (pl *ProgPool[T]) Put(ps []T) {
	if ps == nil {
		return
	}
	pl.mu.Lock()
	if len(pl.free) < maxIdleProgSlabs {
		pl.free = append(pl.free, ps)
	}
	pl.mu.Unlock()
}
