package sim

import "sort"

// TraceRollup condenses a traced run's per-round measurements into the
// summary numbers a telemetry pipeline or bench harness wants: totals,
// extremes, the mean, and tail quantiles of the per-round wall time.
// It exists so callers exporting run telemetry do not each re-derive
// the same aggregation from the raw RoundNanos/RoundAllocs slices.
type TraceRollup struct {
	Rounds int // traced rounds (len of the trace slices)

	TotalNanos int64 // sum of per-round wall time
	MinNanos   int64
	MaxNanos   int64
	MeanNanos  float64
	P50Nanos   int64 // median per-round wall time
	P99Nanos   int64 // 99th-percentile per-round wall time

	TotalAllocs uint64 // sum of per-round heap allocations
	MaxAllocs   uint64 // worst single round
}

// Rollup aggregates the trace slices.  It returns the zero rollup when
// the run was not traced (Options.Trace unset).  Quantiles use the
// nearest-rank method on the sorted per-round times: P50 of a 4-round
// trace is the 2nd-smallest value, P99 of anything under 100 rounds is
// the maximum.
func (s *Stats) Rollup() TraceRollup {
	n := len(s.RoundNanos)
	if n == 0 {
		return TraceRollup{}
	}
	r := TraceRollup{Rounds: n, MinNanos: s.RoundNanos[0]}
	sorted := make([]int64, n)
	copy(sorted, s.RoundNanos)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, ns := range s.RoundNanos {
		r.TotalNanos += ns
		if ns < r.MinNanos {
			r.MinNanos = ns
		}
		if ns > r.MaxNanos {
			r.MaxNanos = ns
		}
	}
	r.MeanNanos = float64(r.TotalNanos) / float64(n)
	r.P50Nanos = sorted[rank(50, n)]
	r.P99Nanos = sorted[rank(99, n)]
	for _, a := range s.RoundAllocs {
		r.TotalAllocs += a
		if a > r.MaxAllocs {
			r.MaxAllocs = a
		}
	}
	return r
}

// rank returns the index of the nearest-rank p-th percentile in a
// sorted slice of length n: ceil(p/100 * n) converted to a 0-based
// index.
func rank(p, n int) int {
	i := (p*n + 99) / 100
	if i < 1 {
		i = 1
	}
	return i - 1
}
