package sim

import (
	"testing"

	"anoncover/internal/graph"
)

func TestTraceRollup(t *testing.T) {
	s := Stats{
		RoundNanos:  []int64{40, 10, 30, 20},
		RoundAllocs: []uint64{0, 5, 2, 0},
	}
	r := s.Rollup()
	if r.Rounds != 4 {
		t.Fatalf("Rounds = %d, want 4", r.Rounds)
	}
	if r.TotalNanos != 100 || r.MinNanos != 10 || r.MaxNanos != 40 {
		t.Errorf("total/min/max = %d/%d/%d, want 100/10/40",
			r.TotalNanos, r.MinNanos, r.MaxNanos)
	}
	if r.MeanNanos != 25 {
		t.Errorf("MeanNanos = %v, want 25", r.MeanNanos)
	}
	// Nearest rank on sorted {10,20,30,40}: P50 -> 2nd value, P99 -> max.
	if r.P50Nanos != 20 {
		t.Errorf("P50Nanos = %d, want 20", r.P50Nanos)
	}
	if r.P99Nanos != 40 {
		t.Errorf("P99Nanos = %d, want 40", r.P99Nanos)
	}
	if r.TotalAllocs != 7 || r.MaxAllocs != 5 {
		t.Errorf("allocs total/max = %d/%d, want 7/5", r.TotalAllocs, r.MaxAllocs)
	}
}

func TestTraceRollupUntraced(t *testing.T) {
	var s Stats
	s.Rounds, s.Messages = 12, 99 // run stats without a trace
	if r := s.Rollup(); r != (TraceRollup{}) {
		t.Fatalf("untraced rollup = %+v, want zero", r)
	}
}

// TestTraceRollupFromRun pins the rollup against a real traced run: it
// must cover every executed round and keep its quantiles ordered.
func TestTraceRollupFromRun(t *testing.T) {
	g := graph.Cycle(8)
	progs := make([]BroadcastProgram, g.N())
	for v := range progs {
		progs[v] = &sumProg{}
		progs[v].Init(Env{})
	}
	stats, err := RunBroadcast(g, progs, 5, Options{Engine: Sequential, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	r := stats.Rollup()
	if r.Rounds != stats.Rounds {
		t.Fatalf("rollup rounds %d != run rounds %d", r.Rounds, stats.Rounds)
	}
	if r.TotalNanos <= 0 || r.MaxNanos < r.P99Nanos || r.P99Nanos < r.P50Nanos || r.P50Nanos < r.MinNanos {
		t.Fatalf("rollup ordering violated: %+v", r)
	}
}
