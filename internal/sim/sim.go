// Package sim is the synchronous anonymous-network runtime on which the
// paper's algorithms execute (Section 1.3 of Åstrand & Suomela, SPAA 2010).
//
// During each synchronous communication round every node, in parallel,
// (i) performs local computation, (ii) sends one message to each
// neighbour, (iii) waits while messages propagate, and (iv) receives one
// message from each neighbour.  Two addressing models are supported:
//
//   - Port-numbering model: a node of degree d refers to its neighbours
//     by ports 1..d; it may send a different message through each port and
//     knows which port each received message came through.
//   - Broadcast model: a node sends one message to all neighbours and
//     receives an unordered multiset; it cannot tell which message came
//     from which neighbour.  Engines can scramble delivery order so that
//     tests catch programs that illegally depend on it.
//
// Programs are deterministic state machines that see only their own
// degree, weight, node kind and the global parameters — never node
// identifiers or n.  Four engines execute them: a sequential reference
// engine, a data-parallel engine that splits nodes across a persistent
// worker pool (goroutines started once per run, re-dispatched each phase
// over per-worker channels), a sharded engine that runs a degree-balanced
// graph partition (internal/shard) with one pinned worker per shard and
// halo exchange on the cut edges, and a CSP engine that runs one
// goroutine per node with channel-per-edge lockstep (kept as a semantic
// reference and test oracle).
//
// The Sequential and Parallel engines deliver messages through a flat
// inbox: one contiguous buffer indexed by per-node CSR offsets
// (graph.FlatTopology), so the message arriving at node v through port p
// lives at slot Off(v)+p.  The Sharded engine splits that inbox into one
// compact inbox per shard plus double-buffered halo buffers for the cut
// edges, routed through precomputed per-half-edge tables.  Both *graph.G
// and *bipartite.Instance are flattened through the same compact path,
// and a pre-built *graph.FlatTopology (or *shard.Topology, which
// additionally amortizes partitioning) may be passed as the Topology
// directly to amortize flattening across runs.  The steady state of a
// run is allocation-free.
//
// What moves through those slots depends on the delivery path.  By
// default the barrier engines take the unboxed wire path (wire.go): a
// port program that implements WirePortProgram declares a fixed
// per-round lane width in 8-byte words and the inbox becomes a flat
// []uint64 — sends encode into word lanes, scatters and halo exchange
// are plain word copies, and receives decode the node's contiguous
// lane slice, with no interface values on the hot path.  Rounds whose
// payloads do not fit a fixed width (a program returns lane width 0
// for them) travel through the boxed []Message inbox instead, so a
// program can keep tight lanes for its dominant rounds and box only
// the fat ones.  Broadcast programs need no opt-in: each node's one
// value per round is interned in a per-node table and receivers gather
// it through the topology's static sender structure, eliminating the
// per-half-edge scatter entirely.  Options.NoWire forces the fully
// boxed path; a wire value that outgrows its lane aborts with
// ErrWireOverflow and the algorithm packages rerun boxed, so results
// never depend on the path taken.
//
// Sharding is an execution detail only: observable behaviour — outputs
// and Stats — must stay bit-identical to the synchronous port-numbering
// semantics of the sequential reference engine, whatever the partition.
//
// All engines produce bit-identical outputs and identical
// Messages/Bytes statistics, which equiv_test.go locks down across every
// algorithm package in the repo.  Options.Trace additionally records
// per-round wall time and allocation counts (barrier engines only);
// `go run ./cmd/experiments -exp bench` uses it to regenerate the
// BENCH_1.json scenario matrix.
package sim

import (
	"context"
	"errors"
	"fmt"

	"anoncover/internal/bipartite"
	"anoncover/internal/graph"
)

// Message is an immutable value exchanged between nodes.  nil means
// "no payload this round" and is delivered like any other message but not
// counted in the statistics.
type Message any

// Sizer lets a message report its wire size in bytes for the message-
// complexity experiments.  Messages without WireSize count 0 bytes.
type Sizer interface{ WireSize() int }

// NodeKind distinguishes the two sides of a bipartite set-cover instance.
type NodeKind int

const (
	KindPlain NodeKind = iota
	KindSubset
	KindElement
)

// Params carries the global parameters all nodes are assumed to know
// (paper Section 1.4): Δ and W for vertex cover, f, k and W for set cover.
type Params struct {
	Delta int
	F, K  int
	W     int64
}

// Env is the entire local knowledge a node starts with.
type Env struct {
	Degree int
	Weight int64
	Kind   NodeKind
	Params Params
}

// PortProgram is a node program in the port-numbering model.
type PortProgram interface {
	// Init is called once before round 1.
	Init(env Env)
	// Send returns the outgoing message for each port in round r
	// (1-based).  The result must have length env.Degree.
	Send(r int) []Message
	// Recv delivers round r's incoming messages; msgs[p] arrived
	// through port p.  The slice is reused by the engine: programs must
	// not retain it.
	Recv(r int, msgs []Message)
	// Output returns the node's final output after the last round.
	Output() any
}

// BroadcastProgram is a node program in the broadcast model.
type BroadcastProgram interface {
	Init(env Env)
	// Send returns the single message broadcast in round r.
	Send(r int) Message
	// Recv delivers the multiset of round-r messages in arbitrary
	// order.  Programs must not depend on the order or retain the slice.
	Recv(r int, msgs []Message)
	Output() any
}

// Topology is the simulator-side wiring.  *graph.G and
// *bipartite.Instance both satisfy it.
type Topology interface {
	N() int
	Deg(v int) int
	Ports(v int) []graph.Half
}

var (
	_ Topology = (*graph.G)(nil)
	_ Topology = (*bipartite.Instance)(nil)
	_ Topology = (*graph.FlatTopology)(nil)
)

// Engine selects an execution strategy.
type Engine int

const (
	// Sequential is the reference engine: one thread, nodes stepped in
	// index order.
	Sequential Engine = iota
	// Parallel shards nodes into contiguous index ranges across a
	// worker pool with a barrier per phase (send, then receive), all
	// workers sharing the one global inbox.
	Parallel
	// CSP runs one goroutine per node; rounds emerge from cap-1
	// channel communication with no global barrier.  It allocates two
	// channels per edge on every run and is retained as a semantic
	// reference and equivalence-test oracle, not a throughput engine;
	// the bench matrix excludes it.
	CSP
	// Sharded partitions the topology into degree-balanced shards
	// (internal/shard), one pinned worker per shard, each stepping its
	// nodes against a compact local inbox via a precomputed route
	// table; cut-edge messages cross through double-buffered halo
	// buffers flushed at the phase barrier.  Options.Workers sets the
	// shard count.
	Sharded
	// Distributed runs the sharded execution plan across processes:
	// each shard is owned by a worker that executes rounds locally and
	// exchanges halo messages as length-prefixed TCP frames at the
	// phase barrier, with per-pair generation-counted synchronization
	// instead of a global barrier.  The engine itself lives in
	// internal/dist (sim cannot import it); a run selects it by setting
	// Options.Dist to a dist runner (e.g. a loopback cluster) and the
	// runner is handed the topology, programs and options verbatim.
	Distributed
)

func (e Engine) String() string {
	switch e {
	case Sequential:
		return "sequential"
	case Parallel:
		return "parallel"
	case CSP:
		return "csp"
	case Sharded:
		return "sharded"
	case Distributed:
		return "distributed"
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// DistRunner executes a run across processes on behalf of the
// Distributed engine.  Implementations live in internal/dist; sim only
// defines the seam so algorithm packages can thread a runner through
// their Options without an import cycle.  The runner must honour the
// engine contract: outputs and Stats bit-identical to the Sequential
// reference engine, errors per the RunPort/RunBroadcast documentation.
type DistRunner interface {
	RunPort(top Topology, progs []PortProgram, rounds int, opt Options) (Stats, error)
	RunBroadcast(top Topology, progs []BroadcastProgram, rounds int, opt Options) (Stats, error)
}

// RoundInfo is the per-round progress snapshot handed to an
// Options.Observer after each completed round.  Messages and Bytes are
// cumulative through the reported round: the barrier engines fan the
// per-worker tallies back in at the round barrier, so the snapshot is
// exact whatever the worker or shard count.
type RoundInfo struct {
	Round    int   // 1-based round just completed
	Total    int   // rounds in this run's schedule
	Messages int64 // messages delivered through this round
	Bytes    int64 // payload bytes delivered through this round
}

// ErrRoundBudget is returned by a run that needed more rounds than its
// Options.RoundBudget allowed.  The run stops at the budget boundary;
// node outputs are unusable (the schedule did not complete).
var ErrRoundBudget = errors.New("sim: round budget exhausted before the schedule completed")

// Options configure a run.
type Options struct {
	Engine Engine
	// Workers is the Parallel engine's pool size and the Sharded
	// engine's shard count; 0 means GOMAXPROCS.
	Workers int
	// ScrambleSeed, when non-zero, shuffles broadcast delivery order
	// deterministically per (node, round).  Correct broadcast programs
	// must produce identical outputs for every seed.
	ScrambleSeed int64
	// Context, when non-nil, is polled at every round barrier; a
	// cancelled or expired context stops the run, which returns
	// Context.Err().  Barrier engines only.
	Context context.Context
	// RoundBudget, when positive, caps the number of rounds executed:
	// a run whose schedule needs more returns ErrRoundBudget at the
	// budget boundary.  Barrier engines only.
	RoundBudget int
	// Observer, when non-nil, is called after each completed round with
	// a cumulative progress snapshot, on the goroutine driving the run.
	// Barrier engines only (the CSP engine has no global barrier and
	// the run returns an error if an observer is set).
	Observer func(RoundInfo)
	// NoWire forces the boxed delivery path: port-model programs run
	// through Send/Recv even when they implement WirePortProgram, and
	// broadcast delivery scatters boxed values instead of gathering
	// from the interned per-node table.  Outputs and Stats are
	// identical either way (the equivalence suite asserts it); the
	// switch exists for those tests and for ablation benchmarks.
	// Barrier engines only; the CSP engine is always boxed.
	NoWire bool
	// Dist supplies the process-spanning runner the Distributed engine
	// delegates to; required when Engine == Distributed, ignored
	// otherwise.  See DistRunner.
	Dist DistRunner
	// Pool, when non-nil, supplies reusable execution resources —
	// persistent worker pools and recycled inbox/message arenas — so
	// back-to-back runs skip the per-run goroutine spawn and O(E)
	// buffer allocations.  Safe for concurrent runs: each run checks
	// resources out and returns them.  Barrier engines only; the CSP
	// engine ignores it.
	Pool *Pool
	// Trace records per-round wall time and allocation counts into
	// Stats.RoundNanos/RoundAllocs.  Barrier engines only (the CSP
	// engine has no global barrier and the run returns an error if
	// Trace is set).  Tracing reads runtime.MemStats twice per round,
	// so it perturbs absolute timings; use it for profiles, not for
	// ns-level claims.
	Trace bool
}

// Stats summarizes a completed run.  Rounds, Messages and Bytes are
// engine-independent — all engines must agree on them exactly, and the
// equivalence suite asserts it.  The trace slices are measurements of
// the run itself and are only populated when Options.Trace is set.
type Stats struct {
	Rounds   int
	Messages int64 // non-nil messages delivered
	Bytes    int64 // total WireSize of delivered messages implementing Sizer

	RoundNanos  []int64  // per-round wall time (Options.Trace only)
	RoundAllocs []uint64 // per-round heap allocations (Options.Trace only)
	// Per-phase split of RoundNanos: the send phase (node stepping plus
	// message emission) and the receive phase (delivery plus state
	// update).  Together they bound RoundNanos from below; the gap is
	// barrier overhead.  Options.Trace only.
	RoundSendNanos []int64
	RoundRecvNanos []int64
}

// GraphEnvs builds per-node environments for a plain graph.
func GraphEnvs(g *graph.G, p Params) []Env {
	envs := make([]Env, g.N())
	for v := range envs {
		envs[v] = Env{Degree: g.Deg(v), Weight: g.Weight(v), Kind: KindPlain, Params: p}
	}
	return envs
}

// GraphParams derives Params from a graph: Δ and W.
func GraphParams(g *graph.G) Params {
	return Params{Delta: g.MaxDegree(), W: g.MaxWeight()}
}

// BipartiteEnvs builds per-node environments for a set-cover instance
// (subset nodes carry their weight; element nodes have no input).
func BipartiteEnvs(ins *bipartite.Instance, p Params) []Env {
	envs := make([]Env, ins.N())
	for v := range envs {
		if ins.IsSubset(v) {
			envs[v] = Env{Degree: ins.Deg(v), Weight: ins.Weight(v), Kind: KindSubset, Params: p}
		} else {
			envs[v] = Env{Degree: ins.Deg(v), Kind: KindElement, Params: p}
		}
	}
	return envs
}

// BipartiteParams derives Params from an instance: f, k and W.
func BipartiteParams(ins *bipartite.Instance) Params {
	return Params{F: ins.MaxF(), K: ins.MaxK(), W: ins.MaxWeight()}
}

// Schedule maps a global 1-based round number to a segment of a phased
// algorithm.  All segment lengths are functions of the global parameters
// only, so every node computes the same schedule — a prerequisite for
// lockstep phase changes in an anonymous network.
type Schedule struct {
	segs  []int
	total int
}

// NewSchedule builds a schedule from segment lengths (each >= 0).
func NewSchedule(segs ...int) Schedule {
	total := 0
	for _, s := range segs {
		if s < 0 {
			panic("sim: negative schedule segment")
		}
		total += s
	}
	return Schedule{segs: segs, total: total}
}

// Total returns the number of rounds in the schedule.
func (s Schedule) Total() int { return s.total }

// Locate returns the segment index and the 1-based round within that
// segment for global round r in [1, Total()].
func (s Schedule) Locate(r int) (seg, local int) {
	if r < 1 || r > s.total {
		panic(fmt.Sprintf("sim: round %d outside schedule of %d rounds", r, s.total))
	}
	for i, n := range s.segs {
		if r <= n {
			return i, r
		}
		r -= n
	}
	panic("unreachable")
}
