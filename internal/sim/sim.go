// Package sim is the synchronous anonymous-network runtime on which the
// paper's algorithms execute (Section 1.3 of Åstrand & Suomela, SPAA 2010).
//
// During each synchronous communication round every node, in parallel,
// (i) performs local computation, (ii) sends one message to each
// neighbour, (iii) waits while messages propagate, and (iv) receives one
// message from each neighbour.  Two addressing models are supported:
//
//   - Port-numbering model: a node of degree d refers to its neighbours
//     by ports 1..d; it may send a different message through each port and
//     knows which port each received message came through.
//   - Broadcast model: a node sends one message to all neighbours and
//     receives an unordered multiset; it cannot tell which message came
//     from which neighbour.  Engines can scramble delivery order so that
//     tests catch programs that illegally depend on it.
//
// Programs are deterministic state machines that see only their own
// degree, weight, node kind and the global parameters — never node
// identifiers or n.  Three engines execute them: a sequential reference
// engine, a sharded data-parallel engine, and a CSP engine that runs one
// goroutine per node with channel-per-edge lockstep.  All engines produce
// identical outputs, which the tests verify.
package sim

import (
	"fmt"

	"anoncover/internal/bipartite"
	"anoncover/internal/graph"
)

// Message is an immutable value exchanged between nodes.  nil means
// "no payload this round" and is delivered like any other message but not
// counted in the statistics.
type Message any

// Sizer lets a message report its wire size in bytes for the message-
// complexity experiments.  Messages without WireSize count 0 bytes.
type Sizer interface{ WireSize() int }

// NodeKind distinguishes the two sides of a bipartite set-cover instance.
type NodeKind int

const (
	KindPlain NodeKind = iota
	KindSubset
	KindElement
)

// Params carries the global parameters all nodes are assumed to know
// (paper Section 1.4): Δ and W for vertex cover, f, k and W for set cover.
type Params struct {
	Delta int
	F, K  int
	W     int64
}

// Env is the entire local knowledge a node starts with.
type Env struct {
	Degree int
	Weight int64
	Kind   NodeKind
	Params Params
}

// PortProgram is a node program in the port-numbering model.
type PortProgram interface {
	// Init is called once before round 1.
	Init(env Env)
	// Send returns the outgoing message for each port in round r
	// (1-based).  The result must have length env.Degree.
	Send(r int) []Message
	// Recv delivers round r's incoming messages; msgs[p] arrived
	// through port p.  The slice is reused by the engine: programs must
	// not retain it.
	Recv(r int, msgs []Message)
	// Output returns the node's final output after the last round.
	Output() any
}

// BroadcastProgram is a node program in the broadcast model.
type BroadcastProgram interface {
	Init(env Env)
	// Send returns the single message broadcast in round r.
	Send(r int) Message
	// Recv delivers the multiset of round-r messages in arbitrary
	// order.  Programs must not depend on the order or retain the slice.
	Recv(r int, msgs []Message)
	Output() any
}

// Topology is the simulator-side wiring.  *graph.G and
// *bipartite.Instance both satisfy it.
type Topology interface {
	N() int
	Deg(v int) int
	Ports(v int) []graph.Half
}

var (
	_ Topology = (*graph.G)(nil)
	_ Topology = (*bipartite.Instance)(nil)
)

// Engine selects an execution strategy.
type Engine int

const (
	// Sequential is the reference engine: one thread, nodes stepped in
	// index order.
	Sequential Engine = iota
	// Parallel shards nodes across a worker pool with a barrier per
	// phase (send, then receive).
	Parallel
	// CSP runs one goroutine per node; rounds emerge from cap-1
	// channel communication with no global barrier.
	CSP
)

func (e Engine) String() string {
	switch e {
	case Sequential:
		return "sequential"
	case Parallel:
		return "parallel"
	case CSP:
		return "csp"
	}
	return fmt.Sprintf("engine(%d)", int(e))
}

// Options configure a run.
type Options struct {
	Engine  Engine
	Workers int // Parallel engine pool size; 0 means GOMAXPROCS
	// ScrambleSeed, when non-zero, shuffles broadcast delivery order
	// deterministically per (node, round).  Correct broadcast programs
	// must produce identical outputs for every seed.
	ScrambleSeed int64
	// OnRound is called after each completed round (Sequential and
	// Parallel engines only; the CSP engine has no global barrier and
	// panics if a hook is set).
	OnRound func(round int)
}

// Stats summarizes a completed run.
type Stats struct {
	Rounds   int
	Messages int64 // non-nil messages delivered
	Bytes    int64 // total WireSize of delivered messages implementing Sizer
}

// GraphEnvs builds per-node environments for a plain graph.
func GraphEnvs(g *graph.G, p Params) []Env {
	envs := make([]Env, g.N())
	for v := range envs {
		envs[v] = Env{Degree: g.Deg(v), Weight: g.Weight(v), Kind: KindPlain, Params: p}
	}
	return envs
}

// GraphParams derives Params from a graph: Δ and W.
func GraphParams(g *graph.G) Params {
	return Params{Delta: g.MaxDegree(), W: g.MaxWeight()}
}

// BipartiteEnvs builds per-node environments for a set-cover instance
// (subset nodes carry their weight; element nodes have no input).
func BipartiteEnvs(ins *bipartite.Instance, p Params) []Env {
	envs := make([]Env, ins.N())
	for v := range envs {
		if ins.IsSubset(v) {
			envs[v] = Env{Degree: ins.Deg(v), Weight: ins.Weight(v), Kind: KindSubset, Params: p}
		} else {
			envs[v] = Env{Degree: ins.Deg(v), Kind: KindElement, Params: p}
		}
	}
	return envs
}

// BipartiteParams derives Params from an instance: f, k and W.
func BipartiteParams(ins *bipartite.Instance) Params {
	return Params{F: ins.MaxF(), K: ins.MaxK(), W: ins.MaxWeight()}
}

// Schedule maps a global 1-based round number to a segment of a phased
// algorithm.  All segment lengths are functions of the global parameters
// only, so every node computes the same schedule — a prerequisite for
// lockstep phase changes in an anonymous network.
type Schedule struct {
	segs  []int
	total int
}

// NewSchedule builds a schedule from segment lengths (each >= 0).
func NewSchedule(segs ...int) Schedule {
	total := 0
	for _, s := range segs {
		if s < 0 {
			panic("sim: negative schedule segment")
		}
		total += s
	}
	return Schedule{segs: segs, total: total}
}

// Total returns the number of rounds in the schedule.
func (s Schedule) Total() int { return s.total }

// Locate returns the segment index and the 1-based round within that
// segment for global round r in [1, Total()].
func (s Schedule) Locate(r int) (seg, local int) {
	if r < 1 || r > s.total {
		panic(fmt.Sprintf("sim: round %d outside schedule of %d rounds", r, s.total))
	}
	for i, n := range s.segs {
		if r <= n {
			return i, r
		}
		r -= n
	}
	panic("unreachable")
}
