package sim

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"anoncover/internal/bipartite"
	"anoncover/internal/graph"
)

var allEngines = []Engine{Sequential, Parallel, CSP}

// echoProg sends a fixed token through every port each round and records
// what arrived through each port.  It is test-side code, so giving it a
// global identity is fine — real algorithms never get one.
type echoProg struct {
	token    int
	deg      int
	lastSeen []int
}

func (p *echoProg) Init(env Env) {
	p.deg = env.Degree
	p.lastSeen = make([]int, env.Degree)
}

func (p *echoProg) Send(r int) []Message {
	out := make([]Message, p.deg)
	for i := range out {
		out[i] = p.token
	}
	return out
}

func (p *echoProg) Recv(r int, msgs []Message) {
	for i, m := range msgs {
		p.lastSeen[i] = m.(int)
	}
}

func (p *echoProg) Output() any { return append([]int(nil), p.lastSeen...) }

func TestPortWiringAllEngines(t *testing.T) {
	g := graph.RandomBoundedDegree(40, 80, 6, 1)
	for _, eng := range allEngines {
		t.Run(eng.String(), func(t *testing.T) {
			progs := make([]PortProgram, g.N())
			echoes := make([]*echoProg, g.N())
			for v := range progs {
				echoes[v] = &echoProg{token: v}
				progs[v] = echoes[v]
				progs[v].Init(GraphEnvs(g, GraphParams(g))[v])
			}
			stats, err := RunPort(g, progs, 3, Options{Engine: eng})
			if err != nil {
				t.Fatal(err)
			}
			if stats.Rounds != 3 {
				t.Fatalf("rounds = %d", stats.Rounds)
			}
			for v := 0; v < g.N(); v++ {
				for p, h := range g.Ports(v) {
					if echoes[v].lastSeen[p] != h.To {
						t.Fatalf("node %d port %d saw %d, want %d",
							v, p, echoes[v].lastSeen[p], h.To)
					}
				}
			}
		})
	}
}

// sumProg broadcasts its weight and accumulates everything it hears; the
// result is order-insensitive, as broadcast programs must be.
type sumProg struct {
	w   int64
	sum int64
}

func (p *sumProg) Init(env Env)       { p.w = env.Weight }
func (p *sumProg) Send(r int) Message { return p.w }
func (p *sumProg) Recv(r int, msgs []Message) {
	for _, m := range msgs {
		p.sum += m.(int64)
	}
}
func (p *sumProg) Output() any { return p.sum }

func runSum(t *testing.T, g *graph.G, opt Options, rounds int) []int64 {
	t.Helper()
	envs := GraphEnvs(g, GraphParams(g))
	progs := make([]BroadcastProgram, g.N())
	sums := make([]*sumProg, g.N())
	for v := range progs {
		sums[v] = &sumProg{}
		progs[v] = sums[v]
		progs[v].Init(envs[v])
	}
	RunBroadcast(g, progs, rounds, opt)
	out := make([]int64, g.N())
	for v := range out {
		out[v] = sums[v].sum
	}
	return out
}

func TestBroadcastEnginesAndScramblesAgree(t *testing.T) {
	g := graph.RandomBoundedDegree(50, 120, 7, 2)
	graph.RandomWeights(g, 100, 3)
	ref := runSum(t, g, Options{Engine: Sequential}, 4)
	for _, eng := range allEngines {
		for _, seed := range []int64{0, 1, 99} {
			got := runSum(t, g, Options{Engine: eng, ScrambleSeed: seed}, 4)
			for v := range ref {
				if got[v] != ref[v] {
					t.Fatalf("engine %v seed %d: node %d sum %d != %d",
						eng, seed, v, got[v], ref[v])
				}
			}
		}
	}
}

// roundTag asserts lockstep: every received message must carry the
// current round number.  This catches round-skew bugs, especially in the
// CSP engine.
type roundTag struct {
	deg  int
	fail atomic.Pointer[string]
}

func (p *roundTag) Init(env Env) { p.deg = env.Degree }
func (p *roundTag) Send(r int) []Message {
	out := make([]Message, p.deg)
	for i := range out {
		out[i] = r
	}
	return out
}
func (p *roundTag) Recv(r int, msgs []Message) {
	for _, m := range msgs {
		if m.(int) != r {
			s := fmt.Sprintf("round %d received tag %d", r, m.(int))
			p.fail.Store(&s)
		}
	}
}
func (p *roundTag) Output() any { return nil }

func TestLockstepAllEngines(t *testing.T) {
	g := graph.RandomRegular(30, 4, 5)
	for _, eng := range allEngines {
		progs := make([]PortProgram, g.N())
		tags := make([]*roundTag, g.N())
		for v := range progs {
			tags[v] = &roundTag{}
			progs[v] = tags[v]
			progs[v].Init(Env{Degree: g.Deg(v)})
		}
		RunPort(g, progs, 10, Options{Engine: eng})
		for v, tg := range tags {
			if msg := tg.fail.Load(); msg != nil {
				t.Fatalf("engine %v node %d: %s", eng, v, *msg)
			}
		}
	}
}

// sized is a message with an explicit wire size.
type sized struct{ n int }

func (s sized) WireSize() int { return s.n }

type sizedProg struct{ deg int }

func (p *sizedProg) Init(env Env) { p.deg = env.Degree }
func (p *sizedProg) Send(r int) Message {
	if r == 2 {
		return nil // idle round: not counted
	}
	return sized{n: 10}
}
func (p *sizedProg) Recv(r int, msgs []Message) {}
func (p *sizedProg) Output() any                { return nil }

func TestStatsCounting(t *testing.T) {
	g := graph.Cycle(6) // 6 nodes, 12 directed deliveries per round
	for _, eng := range allEngines {
		progs := make([]BroadcastProgram, g.N())
		for v := range progs {
			progs[v] = &sizedProg{}
			progs[v].Init(Env{Degree: g.Deg(v)})
		}
		stats, err := RunBroadcast(g, progs, 3, Options{Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		// Rounds 1 and 3 deliver 12 messages of 10 bytes each; round 2
		// delivers nils.
		if stats.Messages != 24 {
			t.Fatalf("engine %v: messages = %d, want 24", eng, stats.Messages)
		}
		if stats.Bytes != 240 {
			t.Fatalf("engine %v: bytes = %d, want 240", eng, stats.Bytes)
		}
	}
}

func TestIsolatedNodes(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1) // nodes 2, 3 isolated
	g := b.Build()
	for _, eng := range allEngines {
		progs := make([]PortProgram, g.N())
		for v := range progs {
			p := &echoProg{token: v}
			progs[v] = p
			p.Init(Env{Degree: g.Deg(v)})
		}
		RunPort(g, progs, 2, Options{Engine: eng}) // must not hang or panic
	}
}

func TestZeroRounds(t *testing.T) {
	g := graph.Cycle(3)
	progs := make([]PortProgram, g.N())
	for v := range progs {
		p := &echoProg{token: v}
		progs[v] = p
		p.Init(Env{Degree: g.Deg(v)})
	}
	stats, err := RunPort(g, progs, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != 0 || stats.Messages != 0 {
		t.Fatal("zero-round run should do nothing")
	}
}

// mkEchoProgs builds one initialized echoProg per node.
func mkEchoProgs(g *graph.G) []PortProgram {
	progs := make([]PortProgram, g.N())
	for v := range progs {
		p := &echoProg{token: v}
		progs[v] = p
		p.Init(Env{Degree: g.Deg(v)})
	}
	return progs
}

func TestObserverHook(t *testing.T) {
	g := graph.Cycle(4) // 8 deliveries per round
	for _, eng := range []Engine{Sequential, Parallel, Sharded} {
		var seen []RoundInfo
		stats, err := RunPort(g, mkEchoProgs(g), 3, Options{Engine: eng, Workers: 2,
			Observer: func(ri RoundInfo) { seen = append(seen, ri) }})
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != 3 {
			t.Fatalf("engine %v: observer fired %d times, want 3", eng, len(seen))
		}
		for i, ri := range seen {
			if ri.Round != i+1 || ri.Total != 3 {
				t.Fatalf("engine %v: observation %d = %+v", eng, i, ri)
			}
			if ri.Messages != int64(8*(i+1)) {
				t.Fatalf("engine %v: cumulative messages %d after round %d, want %d",
					eng, ri.Messages, i+1, 8*(i+1))
			}
		}
		if seen[2].Messages != stats.Messages {
			t.Fatalf("engine %v: final observation %d != stats %d",
				eng, seen[2].Messages, stats.Messages)
		}
	}
}

func TestBarrierOnlyOptionsErrorOnCSP(t *testing.T) {
	g := graph.Cycle(3)
	cancellable, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := map[string]Options{
		"observer": {Engine: CSP, Observer: func(RoundInfo) {}},
		"trace":    {Engine: CSP, Trace: true},
		"context":  {Engine: CSP, Context: cancellable},
		"budget":   {Engine: CSP, RoundBudget: 1},
	}
	for name, opt := range opts {
		if _, err := RunPort(g, mkEchoProgs(g), 1, opt); err == nil {
			t.Errorf("%s: CSP engine accepted a barrier-only option", name)
		}
	}
	// A context that can never be cancelled needs no barrier to honour.
	if _, err := RunPort(g, mkEchoProgs(g), 1, Options{Engine: CSP, Context: context.Background()}); err != nil {
		t.Errorf("CSP engine rejected a never-cancellable context: %v", err)
	}
}

func TestContextCancelStopsRun(t *testing.T) {
	g := graph.Cycle(6)
	for _, eng := range []Engine{Sequential, Parallel, Sharded} {
		ctx, cancel := context.WithCancel(context.Background())
		var fired int
		stats, err := RunPort(g, mkEchoProgs(g), 10, Options{Engine: eng, Context: ctx,
			Observer: func(ri RoundInfo) {
				fired++
				if ri.Round == 2 {
					cancel()
				}
			}})
		if err != context.Canceled {
			t.Fatalf("engine %v: err = %v, want context.Canceled", eng, err)
		}
		if stats.Rounds != 2 || fired != 2 {
			t.Fatalf("engine %v: stopped after %d rounds (%d observations), want 2",
				eng, stats.Rounds, fired)
		}
		cancel()
	}
}

func TestRoundBudget(t *testing.T) {
	g := graph.Cycle(5)
	for _, eng := range []Engine{Sequential, Parallel, Sharded} {
		stats, err := RunPort(g, mkEchoProgs(g), 10, Options{Engine: eng, RoundBudget: 4})
		if err != ErrRoundBudget {
			t.Fatalf("engine %v: err = %v, want ErrRoundBudget", eng, err)
		}
		if stats.Rounds != 4 {
			t.Fatalf("engine %v: executed %d rounds, want 4", eng, stats.Rounds)
		}
		// A budget at least as large as the schedule changes nothing.
		stats, err = RunPort(g, mkEchoProgs(g), 3, Options{Engine: eng, RoundBudget: 3})
		if err != nil || stats.Rounds != 3 {
			t.Fatalf("engine %v: sufficient budget gave rounds=%d err=%v", eng, stats.Rounds, err)
		}
	}
}

func TestTraceRecordsPerRound(t *testing.T) {
	g := graph.Cycle(8)
	for _, eng := range []Engine{Sequential, Parallel} {
		progs := make([]BroadcastProgram, g.N())
		for v := range progs {
			progs[v] = &sumProg{}
			progs[v].Init(Env{})
		}
		stats, err := RunBroadcast(g, progs, 5, Options{Engine: eng, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(stats.RoundNanos) != 5 || len(stats.RoundAllocs) != 5 {
			t.Fatalf("engine %v: trace lengths %d/%d, want 5/5",
				eng, len(stats.RoundNanos), len(stats.RoundAllocs))
		}
		for r, ns := range stats.RoundNanos {
			if ns < 0 {
				t.Fatalf("engine %v round %d: negative wall time", eng, r+1)
			}
		}
	}
}

func TestWrongSendLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	g := graph.Cycle(3)
	progs := make([]PortProgram, g.N())
	for v := range progs {
		p := &echoProg{token: v}
		progs[v] = p
		p.Init(Env{Degree: 1}) // lie about the degree
	}
	RunPort(g, progs, 1, Options{})
}

func TestProgramCountMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	g := graph.Cycle(3)
	RunPort(g, make([]PortProgram, 2), 1, Options{})
}

func TestBipartiteEnvs(t *testing.T) {
	ins := bipartite.NewBuilder(2, 3).
		AddEdge(0, 0).AddEdge(0, 1).AddEdge(1, 1).AddEdge(1, 2).
		Build()
	ins.SetWeight(1, 9)
	p := BipartiteParams(ins)
	if p.F != 2 || p.K != 2 || p.W != 9 {
		t.Fatalf("params %+v", p)
	}
	envs := BipartiteEnvs(ins, p)
	if envs[0].Kind != KindSubset || envs[1].Weight != 9 {
		t.Fatal("subset env wrong")
	}
	if envs[2].Kind != KindElement || envs[2].Weight != 0 {
		t.Fatal("element env wrong")
	}
	if envs[3].Degree != 2 {
		t.Fatalf("element 1 degree %d", envs[3].Degree)
	}
}

func TestSchedule(t *testing.T) {
	s := NewSchedule(2, 0, 3)
	if s.Total() != 5 {
		t.Fatalf("total %d", s.Total())
	}
	cases := []struct{ r, seg, local int }{
		{1, 0, 1}, {2, 0, 2}, {3, 2, 1}, {4, 2, 2}, {5, 2, 3},
	}
	for _, c := range cases {
		seg, local := s.Locate(c.r)
		if seg != c.seg || local != c.local {
			t.Fatalf("Locate(%d) = (%d,%d), want (%d,%d)", c.r, seg, local, c.seg, c.local)
		}
	}
}

func TestScheduleOutOfRangePanics(t *testing.T) {
	s := NewSchedule(2)
	for _, r := range []int{0, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Locate(%d): no panic", r)
				}
			}()
			s.Locate(r)
		}()
	}
}

func TestRunOnBipartiteTopology(t *testing.T) {
	ins := bipartite.Random(8, 20, 3, 6, 10, 7)
	envs := BipartiteEnvs(ins, BipartiteParams(ins))
	for _, eng := range allEngines {
		progs := make([]BroadcastProgram, ins.N())
		sums := make([]*sumProg, ins.N())
		for v := range progs {
			sums[v] = &sumProg{}
			progs[v] = sums[v]
			progs[v].Init(envs[v])
		}
		RunBroadcast(ins, progs, 2, Options{Engine: eng})
		// Elements have weight 0, so after 2 rounds a subset's sum is 0
		// and an element's sum is 2x the weight sum of its subsets.
		for v := 0; v < ins.S(); v++ {
			if sums[v].sum != 0 {
				t.Fatalf("engine %v: subset %d heard nonzero weights", eng, v)
			}
		}
		for v := ins.S(); v < ins.N(); v++ {
			var want int64
			for _, h := range ins.Ports(v) {
				want += 2 * ins.Weight(h.To)
			}
			if sums[v].sum != want {
				t.Fatalf("engine %v: element sum %d, want %d", eng, sums[v].sum, want)
			}
		}
	}
}
