package sim

import "errors"

// This file defines the unboxed wire path: a delivery mode in which the
// barrier engines move fixed-width message payloads as flat lanes of
// 8-byte words instead of boxed Message values.
//
// # Port model
//
// A program opts in by implementing WirePortProgram.  Its WireCodec
// half declares, per round, a lane width in words; the engines then
// size one flat []uint64 inbox (width × half-edges for the round's
// widest layout) and the whole round becomes a contiguous word-copy
// problem: SendWire encodes a node's outgoing messages into one lane
// per port, the engine scatters each lane to slot Off(to)+revPort of
// the inbox (or, in the sharded engine, through the precomputed route
// table into a word-lane halo buffer), and RecvWire reads the node's
// CSR slice of the inbox directly — no interface headers, no pointer
// chasing, nothing for the garbage collector to trace.
//
// A width of 0 for a round means "this round's payloads do not fit a
// fixed width" and the engines deliver that round through the boxed
// Send/Recv path instead — programs with a few fat rounds (edgepack's
// Cole–Vishkin colours) keep tight lanes for the rounds that dominate.
// A program whose every round reports 0 simply runs fully boxed.
//
// The wire path is an execution detail in exactly the sense sharding
// is: outputs and Stats must be bit-identical to the boxed engines, and
// the equivalence suite pins it (TestEquiv*, TestWireStatsParity).
// Options.NoWire forces the boxed path for any program, which is how
// the tests get their reference rows.
//
// # Broadcast model
//
// Broadcast programs need no opt-in: every node publishes exactly one
// value per round, so the engines intern that value once in a per-node
// table and deliver lanes of *senders*, not payloads.  The sender of
// every inbox slot is a static property of the topology (the far
// endpoint of the slot's half-edge), so the per-half-edge scatter
// disappears entirely: the send phase writes n values, and the receive
// phase gathers each node's messages through graph.Half.To (flat
// engines) or the shard.Shard.BSrc table (sharded engine, replacing
// the ghost-cell halo drain).  Options.NoWire restores the scattering
// boxed path here too.

// ErrWireOverflow is returned by a run that chose the wire path and
// then met a value its declared lane width cannot hold (for example a
// rational promoted past int64).  Node programs are mid-round garbage
// at that point; the caller should rebuild its programs and rerun with
// Options.NoWire set.  The algorithm packages do this automatically,
// so the fallback is invisible to their callers.
var ErrWireOverflow = errors.New("sim: message does not fit its declared wire lane; rerun boxed")

// WireCodec declares a program's lane geometry.  Widths must be a
// function of the globally known parameters and the round number only,
// so that every node of a run reports identical widths — the engines
// read one node's codec and trust it for all (the same prerequisite
// lockstep schedules already impose).
type WireCodec interface {
	// WireWords returns the lane width in 8-byte words used by every
	// message of round r, or 0 when round r must travel boxed.
	WireWords(r int) int
}

// WirePortProgram is a PortProgram that can additionally encode its
// rounds into fixed-width word lanes.  The boxed Send/Recv methods
// remain in use: the CSP oracle always runs them, the barrier engines
// run them for rounds whose WireWords is 0, and Options.NoWire forces
// them throughout.  Both paths must drive the same state machine.
type WirePortProgram interface {
	PortProgram
	WireCodec

	// SendWire encodes round r's outgoing messages into out, which
	// holds Degree lanes of WireWords(r) words each (lane p is
	// out[p*w:(p+1)*w]).  It returns the number of non-nil messages
	// encoded and their total wire bytes — exactly the tallies the
	// boxed path's Stats accounting would have produced — and ok=false
	// when some value does not fit the lane, which aborts the run with
	// ErrWireOverflow.
	//
	// Lane word 0 is the idle gate: a lane whose first word is zero is
	// an idle (nil) lane and the engines do not scatter it — sparse
	// rounds cost one word per idle port instead of a full lane copy.
	// A live lane's first word must therefore be nonzero.  Because an
	// idle lane's destination slot keeps whatever bytes an earlier
	// round left there, a program with sparse rounds must make live
	// first words round-distinguishable (stamp the round number into
	// them) and use the same lane width for every wire round, so that
	// word 0 of a slot only ever holds such a stamp (or the zero the
	// buffers start the run with — engines hand every run zeroed lane
	// buffers).  Programs whose every lane is always live need only
	// keep word 0 nonzero.
	SendWire(r int, out []uint64) (msgs, bytes int64, ok bool)

	// RecvWire delivers round r's incoming lanes, laid out like out in
	// SendWire.  Lanes that were idle at the sender hold stale slot
	// bytes, which the round-stamp convention above lets the decoder
	// reject.  The slice is engine-owned and reused; programs must not
	// retain it.
	RecvWire(r int, in []uint64)
}

// wireSetup inspects the run's programs and schedule and fills the
// runner's wire-path state: the per-node WirePortProgram view, the
// codec, the widest lane, and whether any round still travels boxed.
// It leaves the runner in boxed mode when the program set does not
// qualify or NoWire is set.
func (r *runner) wireSetup(rounds int) {
	r.curW = 0
	if r.opt.NoWire || r.port == nil {
		return
	}
	wp := make([]WirePortProgram, len(r.port))
	for i, p := range r.port {
		w, ok := p.(WirePortProgram)
		if !ok {
			return
		}
		wp[i] = w
	}
	maxW := 0
	boxedRounds := false
	var codec WireCodec
	if len(wp) > 0 {
		codec = wp[0]
	}
	for round := 1; round <= rounds; round++ {
		w := 0
		if codec != nil {
			w = codec.WireWords(round)
		}
		if w > maxW {
			maxW = w
		}
		if w == 0 {
			boxedRounds = true
		}
	}
	if maxW == 0 {
		return // program declined every round
	}
	r.wprogs, r.codec, r.maxW, r.boxedRounds = wp, codec, maxW, boxedRounds
}
