package sim_test

import (
	"fmt"
	"testing"

	"anoncover/internal/graph"
	"anoncover/internal/sim"
)

// sizedVal is a test message whose wire size depends on its value, so
// the parity test exercises the Bytes accounting, not just Messages.
type sizedVal uint64

func (s sizedVal) WireSize() int { return int(s%7) + 1 }

// laneProg is a WirePortProgram test double covering every lane shape
// the engines must handle: full rounds, partially-nil rounds, all-nil
// rounds, and a boxed round in the middle of the schedule (WireWords
// returns 0 for round%5 == 4).  Boxed Send/Recv and the wire encoders
// drive the same fold, so any divergence between delivery paths shows
// up in the final state.
type laneProg struct {
	deg   int
	state uint64
	out   []sim.Message
}

func (p *laneProg) Init(env sim.Env) {}

// val returns the deterministic payload for (round, port), or 0 for nil.
func (p *laneProg) val(r, q int) uint64 {
	switch r % 5 {
	case 0: // all nil
		return 0
	case 1: // odd ports only
		if q%2 == 0 {
			return 0
		}
	case 3: // only port 0
		if q != 0 {
			return 0
		}
	}
	v := p.state ^ uint64(r)<<32 ^ uint64(q)
	return v%1000 + 1
}

func (p *laneProg) fold(q int, v uint64) {
	if v == 0 {
		p.state += uint64(q) + 0xbeef
		return
	}
	p.state += v * (uint64(q) + 3)
}

func (p *laneProg) Send(r int) []sim.Message {
	if p.out == nil {
		p.out = make([]sim.Message, p.deg)
	}
	for q := range p.out {
		if v := p.val(r, q); v != 0 {
			p.out[q] = sizedVal(v)
		} else {
			p.out[q] = nil
		}
	}
	return p.out
}

func (p *laneProg) Recv(r int, msgs []sim.Message) {
	for q, m := range msgs {
		if m == nil {
			p.fold(q, 0)
		} else {
			p.fold(q, uint64(m.(sizedVal)))
		}
	}
}

func (p *laneProg) Output() any { return p.state }

func (p *laneProg) WireWords(r int) int {
	if r%5 == 4 {
		return 0 // boxed round in the middle of the schedule
	}
	return 2
}

func (p *laneProg) SendWire(r int, out []uint64) (msgs, bytes int64, ok bool) {
	// Live lanes stamp the round into word 0 (idle lanes are skipped by
	// the engine and leave stale slot bytes, which the stamp lets the
	// decoder reject — the sparse-round convention of WirePortProgram).
	hdr := uint64(r)<<1 | 1
	for q := 0; q < p.deg; q++ {
		v := p.val(r, q)
		if v == 0 {
			out[2*q] = 0
			continue
		}
		out[2*q], out[2*q+1] = hdr, v
		msgs++
		bytes += int64(sizedVal(v).WireSize())
	}
	return msgs, bytes, true
}

func (p *laneProg) RecvWire(r int, in []uint64) {
	hdr := uint64(r)<<1 | 1
	for q := 0; q < p.deg; q++ {
		if in[2*q] != hdr {
			p.fold(q, 0)
		} else {
			p.fold(q, in[2*q+1])
		}
	}
}

// TestWireStatsParity pins the wire path's observable equivalence where
// it is easiest to get wrong: Stats.Messages and Stats.Bytes must be
// bit-identical between the wire and boxed paths on every barrier
// engine — including rounds where every message is nil, rounds with a
// mix, and mid-schedule boxed rounds — and both must match the CSP
// oracle.  Outputs are compared too.  The algorithm packages get the
// same treatment through the equivalence matrices (equiv_test.go); this
// test isolates the accounting with a program built to stress it.
func TestWireStatsParity(t *testing.T) {
	tops := map[string]*graph.G{
		"grid-7x5":     graph.Grid(7, 5),
		"powerlaw-60":  graph.PowerLaw(60, 3, 5),
		"regular-48-4": graph.RandomRegular(48, 4, 6),
	}
	const rounds = 17
	for name, g := range tops {
		t.Run(name, func(t *testing.T) {
			run := func(opt sim.Options) ([]uint64, sim.Stats) {
				progs := make([]sim.PortProgram, g.N())
				nodes := make([]*laneProg, g.N())
				for v := range progs {
					nodes[v] = &laneProg{deg: g.Deg(v), state: uint64(v)*2654435761 + 1}
					progs[v] = nodes[v]
				}
				stats, err := sim.RunPort(g, progs, rounds, opt)
				if err != nil {
					t.Fatal(err)
				}
				outs := make([]uint64, g.N())
				for v := range outs {
					outs[v] = nodes[v].state
				}
				return outs, stats
			}
			refOut, refStats := run(sim.Options{Engine: sim.CSP})
			if refStats.Messages == 0 || refStats.Bytes == 0 {
				t.Fatal("degenerate reference run: no traffic counted")
			}
			for _, ev := range []struct {
				name string
				opt  sim.Options
			}{
				{"sequential-wire", sim.Options{Engine: sim.Sequential}},
				{"sequential-boxed", sim.Options{Engine: sim.Sequential, NoWire: true}},
				{"parallel-3-wire", sim.Options{Engine: sim.Parallel, Workers: 3}},
				{"parallel-3-boxed", sim.Options{Engine: sim.Parallel, Workers: 3, NoWire: true}},
				{"sharded-2-wire", sim.Options{Engine: sim.Sharded, Workers: 2}},
				{"sharded-4-wire", sim.Options{Engine: sim.Sharded, Workers: 4}},
				{"sharded-4-boxed", sim.Options{Engine: sim.Sharded, Workers: 4, NoWire: true}},
			} {
				t.Run(ev.name, func(t *testing.T) {
					out, stats := run(ev.opt)
					if stats.Rounds != refStats.Rounds || stats.Messages != refStats.Messages ||
						stats.Bytes != refStats.Bytes {
						t.Fatalf("stats diverge from CSP oracle: %+v != %+v", stats, refStats)
					}
					for v := range refOut {
						if out[v] != refOut[v] {
							t.Fatalf("node %d state %x != %x", v, out[v], refOut[v])
						}
					}
				})
			}
		})
	}
}

// overflowProg reports an unencodable value at a chosen round.
type overflowProg struct {
	laneProg
	failAt int
}

func (p *overflowProg) SendWire(r int, out []uint64) (int64, int64, bool) {
	if r == p.failAt {
		return 0, 0, false
	}
	return p.laneProg.SendWire(r, out)
}

// TestWireOverflow: a SendWire that cannot encode its value must abort
// the run with ErrWireOverflow at the send barrier, on every barrier
// engine; rerunning the same programs boxed succeeds.
func TestWireOverflow(t *testing.T) {
	g := graph.Grid(5, 5)
	for _, opt := range []sim.Options{
		{Engine: sim.Sequential},
		{Engine: sim.Parallel, Workers: 3},
		{Engine: sim.Sharded, Workers: 4},
	} {
		t.Run(fmt.Sprintf("%v-%d", opt.Engine, opt.Workers), func(t *testing.T) {
			progs := make([]sim.PortProgram, g.N())
			for v := range progs {
				progs[v] = &overflowProg{laneProg: laneProg{deg: g.Deg(v)}, failAt: 3}
			}
			_, err := sim.RunPort(g, progs, 10, opt)
			if err != sim.ErrWireOverflow {
				t.Fatalf("err = %v, want ErrWireOverflow", err)
			}
			// The documented recovery: rebuild and rerun boxed.
			for v := range progs {
				progs[v] = &overflowProg{laneProg: laneProg{deg: g.Deg(v)}, failAt: 3}
			}
			boxed := opt
			boxed.NoWire = true
			if _, err := sim.RunPort(g, progs, 10, boxed); err != nil {
				t.Fatalf("boxed rerun failed: %v", err)
			}
		})
	}
}
