// Package views computes canonical fingerprints of the local views that
// determine what an anonymous deterministic algorithm can possibly
// output (cf. paper Sections 1.3 and 7, and the covering-graph argument
// of Angluin / Yamashita–Kameda).
//
// The depth-d view of a node in the port-numbering model is the
// port-labelled unfolding tree of radius d: its own weight and degree,
// and for every port the reverse port index and the depth-(d-1) view of
// the neighbour.  In the broadcast model ports are invisible, so the
// view is the unordered multiset of neighbour views.  Two nodes with
// equal depth-d views receive identical message histories in any
// deterministic d-round algorithm and must produce identical outputs —
// the property the tests in this repository assert against the real
// algorithms.
//
// Views are fingerprinted by iterated hashing (one refinement sweep per
// depth level), which is linear per level and exact: level-d hashes
// distinguish exactly what level-d views distinguish, up to hash
// collisions (64-bit FNV, negligible at these scales).
package views

import (
	"encoding/binary"
	"hash/fnv"
	"sort"

	"anoncover/internal/graph"
	"anoncover/internal/sim"
)

// Topology is the wiring interface shared with the sim package.
type Topology interface {
	N() int
	Deg(v int) int
	Ports(v int) []graph.Half
}

var _ Topology = (sim.Topology)(nil)

// node attribute callback: anything the algorithm sees as local input
// (weight, node kind).  It must be a pure function of the node.
type Attr func(v int) uint64

// WeightAttr builds an Attr from a graph's weights.
func WeightAttr(g *graph.G) Attr {
	return func(v int) uint64 { return uint64(g.Weight(v)) }
}

// PortHashes returns per-node fingerprints of the depth-d views in the
// port-numbering model.
func PortHashes(top Topology, attr Attr, depth int) []uint64 {
	n := top.N()
	cur := baseLevel(top, attr)
	buf := make([]byte, 8)
	for d := 0; d < depth; d++ {
		next := make([]uint64, n)
		for v := 0; v < n; v++ {
			h := fnv.New64a()
			put := func(x uint64) {
				binary.BigEndian.PutUint64(buf, x)
				h.Write(buf)
			}
			put(cur[v])
			for _, half := range top.Ports(v) {
				// The port order is the slice order; include the
				// reverse port, which the node observes implicitly
				// through the message pattern.
				put(uint64(half.RevPort))
				put(cur[half.To])
			}
			next[v] = h.Sum64()
		}
		cur = next
	}
	return cur
}

// BroadcastHashes returns per-node fingerprints of the depth-d views in
// the broadcast model: neighbour views form an unordered multiset and
// ports are invisible.
func BroadcastHashes(top Topology, attr Attr, depth int) []uint64 {
	n := top.N()
	cur := baseLevel(top, attr)
	buf := make([]byte, 8)
	for d := 0; d < depth; d++ {
		next := make([]uint64, n)
		for v := 0; v < n; v++ {
			hs := make([]uint64, 0, top.Deg(v))
			for _, half := range top.Ports(v) {
				hs = append(hs, cur[half.To])
			}
			sort.Slice(hs, func(a, b int) bool { return hs[a] < hs[b] })
			h := fnv.New64a()
			binary.BigEndian.PutUint64(buf, cur[v])
			h.Write(buf)
			for _, x := range hs {
				binary.BigEndian.PutUint64(buf, x)
				h.Write(buf)
			}
			next[v] = h.Sum64()
		}
		cur = next
	}
	return cur
}

// baseLevel hashes the depth-0 view: local input and degree.
func baseLevel(top Topology, attr Attr) []uint64 {
	n := top.N()
	cur := make([]uint64, n)
	buf := make([]byte, 8)
	for v := 0; v < n; v++ {
		h := fnv.New64a()
		binary.BigEndian.PutUint64(buf, attr(v))
		h.Write(buf)
		binary.BigEndian.PutUint64(buf, uint64(top.Deg(v)))
		h.Write(buf)
		cur[v] = h.Sum64()
	}
	return cur
}

// Classes groups node indices by fingerprint.
func Classes(hashes []uint64) map[uint64][]int {
	m := make(map[uint64][]int)
	for v, h := range hashes {
		m[h] = append(m[h], v)
	}
	return m
}
