package views

import (
	"testing"

	"anoncover/internal/bipartite"
	"anoncover/internal/core/bcastvc"
	"anoncover/internal/core/edgepack"
	"anoncover/internal/core/fracpack"
	"anoncover/internal/graph"
	"anoncover/internal/sim"
)

func TestUniformCycleAllViewsEqual(t *testing.T) {
	g := graph.Cycle(12)
	graph.UniformWeights(g, 3)
	for _, depth := range []int{0, 1, 5, 20} {
		hs := BroadcastHashes(g, WeightAttr(g), depth)
		for v := 1; v < g.N(); v++ {
			if hs[v] != hs[0] {
				t.Fatalf("depth %d: cycle nodes have different broadcast views", depth)
			}
		}
	}
}

func TestPathEndpointsDifferFromMiddle(t *testing.T) {
	g := graph.Path(5)
	hs := PortHashes(g, WeightAttr(g), 1)
	if hs[0] == hs[2] {
		t.Fatal("degree-1 endpoint and degree-2 middle share a view")
	}
	// In the PORT model the endpoints differ (insertion-order ports give
	// node 1 and node 3 different reverse-port indices), but in the
	// BROADCAST model, where ports are invisible, they are symmetric.
	bh := BroadcastHashes(g, WeightAttr(g), 2)
	if bh[0] != bh[4] {
		t.Fatal("path endpoints are broadcast-symmetric")
	}
	if bh[1] != bh[3] {
		t.Fatal("nodes 1 and 3 are broadcast-symmetric")
	}
}

func TestWeightsBreakViewEquality(t *testing.T) {
	g := graph.Cycle(6)
	hs := BroadcastHashes(g, WeightAttr(g), 1)
	if hs[0] != hs[3] {
		t.Fatal("uniform cycle: views equal")
	}
	g.SetWeight(0, 7)
	hs = BroadcastHashes(g, WeightAttr(g), 1)
	if hs[0] == hs[3] {
		t.Fatal("weight change must change the view")
	}
}

func TestLiftPreservesViews(t *testing.T) {
	base := graph.RandomBoundedDegree(12, 20, 4, 1)
	graph.RandomWeights(base, 9, 2)
	k := 3
	lifted := graph.Lift(base, k, 3)
	liftAttr := func(v int) uint64 { return uint64(lifted.Weight(v)) }
	for _, depth := range []int{1, 3, 8} {
		hb := PortHashes(base, WeightAttr(base), depth)
		hl := PortHashes(lifted, liftAttr, depth)
		for v := 0; v < base.N(); v++ {
			for i := 0; i < k; i++ {
				if hl[v*k+i] != hb[v] {
					t.Fatalf("depth %d: fibre view differs from base view at node %d", depth, v)
				}
			}
		}
	}
}

// TestEqualViewsImplyEqualOutputs_PortModel is the fundamental anonymity
// property, asserted against the real Section 3 algorithm: nodes whose
// depth-R port views coincide must produce identical outputs, where R is
// the algorithm's round count.
func TestEqualViewsImplyEqualOutputs_PortModel(t *testing.T) {
	gens := []func() *graph.G{
		func() *graph.G { g := graph.Cycle(9); graph.UniformWeights(g, 4); return g },
		func() *graph.G { return graph.CompleteBipartite(3, 3) },
		func() *graph.G { g := graph.Grid(3, 4); return g },
		func() *graph.G { g := graph.RandomBoundedDegree(20, 30, 4, 5); graph.RandomWeights(g, 3, 6); return g },
	}
	for gi, gen := range gens {
		g := gen()
		res := edgepack.MustRun(g, edgepack.Options{})
		rounds := edgepack.Rounds(sim.GraphParams(g))
		hs := PortHashes(g, WeightAttr(g), rounds)
		for _, class := range Classes(hs) {
			for _, v := range class[1:] {
				if res.Cover[v] != res.Cover[class[0]] {
					t.Fatalf("gen %d: nodes %d and %d share a depth-%d view but differ in output",
						gi, class[0], v, rounds)
				}
			}
		}
	}
}

// TestEqualViewsImplyEqualOutputs_Broadcast asserts the property for the
// Section 4 algorithm in the broadcast model on the bipartite topology.
func TestEqualViewsImplyEqualOutputs_Broadcast(t *testing.T) {
	instances := []*bipartite.Instance{
		bipartite.SymmetricKpp(3),
		bipartite.CycleReduction(12, 3),
		bipartite.Random(8, 16, 3, 5, 4, 7),
	}
	for ii, ins := range instances {
		res := fracpack.MustRun(ins, fracpack.Options{})
		params := sim.BipartiteParams(ins)
		attr := func(v int) uint64 {
			if ins.IsSubset(v) {
				return uint64(ins.Weight(v))<<1 | 1
			}
			return 0
		}
		depth := fracpack.Rounds(params)
		if depth > 600 {
			depth = 600 // view refinement saturates long before this
		}
		hs := BroadcastHashes(ins, attr, depth)
		for _, class := range Classes(hs) {
			for _, v := range class[1:] {
				v0 := class[0]
				if ins.IsSubset(v) != ins.IsSubset(v0) {
					continue // weight attr disambiguates kinds; keep safe
				}
				if ins.IsSubset(v) {
					if res.Cover[v] != res.Cover[v0] {
						t.Fatalf("instance %d: subsets %d and %d share views but differ", ii, v0, v)
					}
				} else {
					u0, u := ins.ElementIndex(v0), ins.ElementIndex(v)
					if !res.Y[u].Equal(res.Y[u0]) {
						t.Fatalf("instance %d: elements %d and %d share views but differ", ii, u0, u)
					}
				}
			}
		}
	}
}

// TestEqualViewsImplyEqualOutputs_BroadcastVC asserts it for the
// Section 5 simulation on plain graphs.
func TestEqualViewsImplyEqualOutputs_BroadcastVC(t *testing.T) {
	g := graph.CompleteBipartite(2, 3)
	graph.UniformWeights(g, 2)
	res := bcastvc.MustRun(g, bcastvc.Options{})
	hs := BroadcastHashes(g, WeightAttr(g), 200)
	for _, class := range Classes(hs) {
		for _, v := range class[1:] {
			if res.Cover[v] != res.Cover[class[0]] {
				t.Fatalf("nodes %d and %d share broadcast views but differ in output", class[0], v)
			}
		}
	}
}

func TestClasses(t *testing.T) {
	c := Classes([]uint64{5, 7, 5, 5})
	if len(c[5]) != 3 || len(c[7]) != 1 {
		t.Fatalf("classes wrong: %v", c)
	}
}
