package anoncover

import (
	"math/rand"

	"anoncover/internal/core/edgepack"
	"anoncover/internal/graph"
	"anoncover/internal/rational"
	"anoncover/internal/selfstab"
	"anoncover/internal/sim"
)

// SelfStabVertexCover wraps the Section 3 vertex cover algorithm in the
// self-stabilising transformation the paper's Section 1.5 points to
// (Awerbuch–Varghese / Lenzen–Suomela–Wattenhofer): node state becomes a
// replayable table of the algorithm's messages, every step re-derives it
// from the neighbours' tables, and any transient state corruption heals
// within T+1 steps, where T is the algorithm's round count.
type SelfStabVertexCover struct {
	g   *graph.G
	sys *selfstab.System
}

// NewSelfStabVertexCover builds the self-stabilising system on g.  The
// initial state is arbitrary (all-zero tables); call Step at least
// Rounds()+1 times to reach a correct output.
func NewSelfStabVertexCover(g *Graph) *SelfStabVertexCover {
	return newSelfStabVC(g.g, sim.GraphParams(g.g))
}

// SelfStabVertexCover returns the self-stabilising transformation over
// the solver's graph, honouring the session's declared Δ/W bounds: the
// replayed schedule — and with it the stabilisation time T+1 — follows
// the compiled parameters, exactly like the solver's engine runs.  Like
// every run on the Solver, it errors if the graph structure was mutated
// after Compile (the compiled bounds could silently undercut the new
// maxima); weight mutations are absorbed through the solver's current
// weight snapshot, which the replayed system is built on.
func (s *Solver) SelfStabVertexCover() (*SelfStabVertexCover, error) {
	c, err := s.runConfig(nil)
	if err != nil {
		return nil, err
	}
	snap, err := s.snapshot(&c)
	if err != nil {
		return nil, err
	}
	params := sim.GraphParams(snap.g)
	if s.cfg.delta != 0 {
		params.Delta = s.cfg.delta
	}
	if s.cfg.maxW != 0 {
		params.W = s.cfg.maxW
	}
	return newSelfStabVC(snap.g, params), nil
}

func newSelfStabVC(g *graph.G, params sim.Params) *SelfStabVertexCover {
	envs := sim.GraphEnvs(g, params)
	factories := make([]selfstab.Factory, g.N())
	for v := range factories {
		env := envs[v]
		factories[v] = func() sim.PortProgram { return edgepack.New(env) }
	}
	return &SelfStabVertexCover{
		g:   g,
		sys: selfstab.NewSystem(g, edgepack.Rounds(params), factories),
	}
}

// Rounds returns T, the underlying algorithm's round count; T+1
// fault-free steps guarantee stabilisation from any state.
func (s *SelfStabVertexCover) Rounds() int { return s.sys.Rounds() }

// Step performs one synchronous stabilisation step.
func (s *SelfStabVertexCover) Step() { s.sys.Step() }

// Corrupt adversarially corrupts the volatile state: each table entry is
// independently replaced with garbage with probability frac
// (deterministic in seed).  Models transient memory faults.
func (s *SelfStabVertexCover) Corrupt(seed int64, frac float64) {
	s.sys.Corrupt(rand.New(rand.NewSource(seed)), frac)
}

// Result assembles the current outputs into a VertexCoverResult.  It
// returns ok=false while the state is inconsistent (endpoints disagree
// on an edge value or a node output is unusable) — i.e. before the
// system has stabilised.
func (s *SelfStabVertexCover) Result() (res *VertexCoverResult, ok bool) {
	g := s.g
	y := make([]rational.Rat, g.M())
	seen := make([]bool, g.M())
	cover := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		out, isResult := s.sys.Output(v).(edgepack.NodeResult)
		if !isResult {
			return nil, false
		}
		cover[v] = out.InCover
		for q, h := range g.Ports(v) {
			if len(out.Y) <= q {
				return nil, false
			}
			if !seen[h.Edge] {
				seen[h.Edge] = true
				y[h.Edge] = out.Y[q]
			} else if !y[h.Edge].Equal(out.Y[q]) {
				return nil, false
			}
		}
	}
	r := newVCResult(g, y, cover, s.sys.Rounds(), sim.Stats{})
	if r.Verify() != nil {
		return nil, false
	}
	return r, true
}

// Stabilise steps until Result verifies, up to max steps; it returns the
// number of steps taken and whether stabilisation was reached.
func (s *SelfStabVertexCover) Stabilise(max int) (steps int, ok bool) {
	for i := 1; i <= max; i++ {
		s.Step()
		if _, good := s.Result(); good {
			return i, true
		}
	}
	return max, false
}
