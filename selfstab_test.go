package anoncover

import "testing"

func TestSelfStabColdStart(t *testing.T) {
	g := RandomGraph(30, 55, 4, 5)
	g.WeighRandom(9, 6)
	sys := NewSelfStabVertexCover(g)
	steps, ok := sys.Stabilise(sys.Rounds() + 1)
	if !ok {
		t.Fatal("did not stabilise within T+1 steps")
	}
	res, good := sys.Result()
	if !good {
		t.Fatal("result not available after stabilisation")
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	// Must match the non-stabilising algorithm exactly.
	ref := VertexCover(g)
	if res.Weight != ref.Weight {
		t.Fatalf("self-stab weight %d != reference %d", res.Weight, ref.Weight)
	}
	t.Logf("stabilised in %d of %d allowed steps", steps, sys.Rounds()+1)
}

func TestSelfStabHealsAfterCorruption(t *testing.T) {
	g := CycleGraph(16)
	g.WeighRandom(7, 2)
	sys := NewSelfStabVertexCover(g)
	if _, ok := sys.Stabilise(sys.Rounds() + 1); !ok {
		t.Fatal("cold start failed")
	}
	before, _ := sys.Result()
	for trial := int64(0); trial < 3; trial++ {
		sys.Corrupt(trial, 0.5)
		steps, ok := sys.Stabilise(sys.Rounds() + 1)
		if !ok {
			t.Fatalf("trial %d: did not heal within T+1 steps", trial)
		}
		after, good := sys.Result()
		if !good || after.Weight != before.Weight {
			t.Fatalf("trial %d: healed output differs", trial)
		}
		t.Logf("trial %d: healed in %d steps", trial, steps)
	}
}
