package anoncover

import (
	"context"
	"fmt"
	"io"
	"math/big"
	"runtime"

	"anoncover/internal/bipartite"
	"anoncover/internal/core/fracpack"
	"anoncover/internal/shard"
	"anoncover/internal/sim"
)

// SetCoverInstance is a weighted set-cover instance represented as the
// bipartite graph H = (S ∪ U, A) of paper Section 1.2; the input of
// SetCover.
type SetCoverInstance struct {
	ins *bipartite.Instance
}

// SetCoverBuilder accumulates subsets, elements and memberships.
type SetCoverBuilder struct {
	b *bipartite.Builder
}

// NewSetCover returns a builder for an instance with s subsets and u
// elements (subset weights default 1).
func NewSetCover(s, u int) *SetCoverBuilder {
	return &SetCoverBuilder{b: bipartite.NewBuilder(s, u)}
}

// AddMember declares element u a member of subset s.
func (b *SetCoverBuilder) AddMember(s, u int) *SetCoverBuilder {
	b.b.AddEdge(s, u)
	return b
}

// SetWeight sets subset s's positive weight.
func (b *SetCoverBuilder) SetWeight(s int, w int64) *SetCoverBuilder {
	b.b.SetWeight(s, w)
	return b
}

// Build finalizes the instance.
func (b *SetCoverBuilder) Build() *SetCoverInstance {
	return &SetCoverInstance{ins: b.b.Build()}
}

// Subsets returns |S|.
func (i *SetCoverInstance) Subsets() int { return i.ins.S() }

// Elements returns |U|.
func (i *SetCoverInstance) Elements() int { return i.ins.U() }

// Memberships returns |A|, the number of (subset, element) incidences.
func (i *SetCoverInstance) Memberships() int { return i.ins.M() }

// Weight returns the weight of subset s.
func (i *SetCoverInstance) Weight(s int) int64 { return i.ins.Weight(s) }

// MaxFrequency returns f, the maximum number of subsets an element
// belongs to.
func (i *SetCoverInstance) MaxFrequency() int { return i.ins.MaxF() }

// MaxSubsetSize returns k, the maximum subset cardinality.
func (i *SetCoverInstance) MaxSubsetSize() int { return i.ins.MaxK() }

// MaxWeight returns W.
func (i *SetCoverInstance) MaxWeight() int64 { return i.ins.MaxWeight() }

// IsCover reports whether the marked subsets cover every element.
func (i *SetCoverInstance) IsCover(cover []bool) bool { return i.ins.IsCover(cover) }

// CoverWeight returns the total weight of the marked subsets.
func (i *SetCoverInstance) CoverWeight(cover []bool) int64 { return i.ins.CoverWeight(cover) }

// SetCoverSolver is the compiled set-cover session, the bipartite
// analogue of Solver: CompileSetCover builds the flat topology of the
// incidence graph H (and the shard partition for EngineSharded) once,
// and every SetCover run reuses it.  Safe for concurrent callers; see
// Solver for the sharing contract.
type SetCoverSolver struct {
	ins     *SetCoverInstance
	cfg     config
	top     sim.Topology
	pool    *sim.Pool
	progs   *fracpack.ProgramPool // recycled node programs
	version uint64
}

// CompileSetCover validates opts against ins and builds a reusable
// SetCoverSolver.  It returns an error for invalid options, declared
// f/k/W bounds below the actual instance values, or an instance with an
// uncoverable element.
func CompileSetCover(ins *SetCoverInstance, opts ...Option) (*SetCoverSolver, error) {
	c := buildConfig(opts)
	if err := c.validate(); err != nil {
		return nil, err
	}
	if c.f != 0 && c.f < ins.MaxFrequency() {
		return nil, fmt.Errorf("anoncover: WithSetCoverBounds: f=%d below the actual maximum frequency %d",
			c.f, ins.MaxFrequency())
	}
	if c.k != 0 && c.k < ins.MaxSubsetSize() {
		return nil, fmt.Errorf("anoncover: WithSetCoverBounds: k=%d below the actual maximum subset size %d",
			c.k, ins.MaxSubsetSize())
	}
	if c.maxW != 0 && c.maxW < ins.MaxWeight() {
		return nil, fmt.Errorf("anoncover: WithWeightBound(%d) below the actual maximum weight %d",
			c.maxW, ins.MaxWeight())
	}
	for u := 0; u < ins.Elements(); u++ {
		if ins.ins.Deg(ins.ins.ElementNode(u)) == 0 {
			return nil, fmt.Errorf("anoncover: element %d belongs to no subset; the instance has no cover", u)
		}
	}
	flat := ins.ins.Flat()
	var top sim.Topology = flat
	if c.engine == EngineSharded {
		k := c.workers
		if k <= 0 {
			k = runtime.GOMAXPROCS(0)
		}
		st := shard.BuildK(flat, k)
		// Pin the session default to the clamped shard count so runs
		// reuse the pre-built partition (see Compile).
		c.workers = st.K()
		top = st
	}
	return &SetCoverSolver{
		ins: ins, cfg: c, top: top, pool: sim.NewPool(),
		progs: &fracpack.ProgramPool{}, version: ins.ins.Version(),
	}, nil
}

// Instance returns the instance the solver was compiled for.
func (s *SetCoverSolver) Instance() *SetCoverInstance { return s.ins }

// Close releases the session's pooled worker goroutines; see
// Solver.Close.
func (s *SetCoverSolver) Close() error {
	s.pool.Close()
	return nil
}

// SetCover runs the Section 4 algorithm on the compiled topology: a
// deterministic f-approximation of minimum-weight set cover in
// O(f²k² + fk·log* W) rounds in the anonymous broadcast model.  The
// context is polled at every round barrier; per-run options extend the
// session defaults.
func (s *SetCoverSolver) SetCover(ctx context.Context, opts ...Option) (*SetCoverResult, error) {
	if v := s.ins.ins.Version(); v != s.version {
		return nil, fmt.Errorf("anoncover: instance mutated after CompileSetCover (version %d, compiled at %d); recompile the solver", v, s.version)
	}
	c := s.cfg
	for _, o := range opts {
		o(&c)
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	res, err := fracpack.Run(s.ins.ins, fracpack.Options{
		Engine: c.engine.internal(), Workers: c.workers, ScrambleSeed: c.scramble,
		F: c.f, K: c.k, W: c.maxW, EarlyExit: c.earlyExit,
		Topology: s.top, Context: ctx, RoundBudget: c.budget,
		Observer: simObserver(c.observer), Pool: s.pool,
		NoWire: c.noWire, Programs: s.progs,
	})
	if err != nil {
		return nil, err
	}
	out := &SetCoverResult{
		Cover:           res.Cover,
		Packing:         make([]*big.Rat, len(res.Y)),
		Weight:          res.CoverWeight(s.ins.ins),
		Rounds:          res.Rounds,
		ScheduledRounds: res.ScheduledRounds,
		Messages:        res.Stats.Messages,
		Bytes:           res.Stats.Bytes,
		ins:             s.ins.ins,
		y:               res.Y,
	}
	for u, v := range res.Y {
		out.Packing[u] = v.Big()
	}
	return out, nil
}

// MaximalFractionalPacking is an alias for SetCover emphasising the
// primal object.
func (s *SetCoverSolver) MaximalFractionalPacking(ctx context.Context, opts ...Option) (*SetCoverResult, error) {
	return s.SetCover(ctx, opts...)
}

// Generators.

// RandomSetCover returns a random instance with s subsets and u elements
// where element frequency is at most f, subset size at most k, and
// weights are uniform in {1..maxW}.  Requires s*k >= u.
func RandomSetCover(s, u, f, k int, maxW, seed int64) *SetCoverInstance {
	return &SetCoverInstance{ins: bipartite.Random(s, u, f, k, maxW, seed)}
}

// SymmetricSetCover returns the paper's Figure 3 lower-bound instance:
// K_{p,p} with a fully symmetric port numbering.  Any deterministic
// anonymous algorithm outputs all p subsets while the optimum is 1.
func SymmetricSetCover(p int) *SetCoverInstance {
	return &SetCoverInstance{ins: bipartite.SymmetricKpp(p)}
}

// CycleSetCover returns the paper's Figure 4 reduction instance from a
// directed n-cycle with parameter p (f = k = p, optimum n/p).
func CycleSetCover(n, p int) *SetCoverInstance {
	return &SetCoverInstance{ins: bipartite.CycleReduction(n, p)}
}

// IncidenceSetCover converts a vertex cover instance into the set cover
// instance of Section 5: subsets are nodes, elements are edges, f = 2,
// k = Δ.
func IncidenceSetCover(g *Graph) *SetCoverInstance {
	return &SetCoverInstance{ins: bipartite.FromGraph(g.g)}
}

// ReadSetCover parses the text format produced by WriteSetCover.
func ReadSetCover(r io.Reader) (*SetCoverInstance, error) {
	ins, err := bipartite.Parse(r)
	if err != nil {
		return nil, err
	}
	return &SetCoverInstance{ins: ins}, nil
}

// WriteSetCover serializes the instance in the text format.
func WriteSetCover(w io.Writer, i *SetCoverInstance) error {
	return bipartite.Write(w, i.ins)
}
