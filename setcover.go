package anoncover

import (
	"context"
	"fmt"
	"io"
	"math/big"
	"runtime"
	"sync"
	"sync/atomic"

	"anoncover/internal/bipartite"
	"anoncover/internal/core/fracpack"
	"anoncover/internal/shard"
	"anoncover/internal/sim"
)

// SetCoverInstance is a weighted set-cover instance represented as the
// bipartite graph H = (S ∪ U, A) of paper Section 1.2; the input of
// SetCover.
type SetCoverInstance struct {
	ins *bipartite.Instance
}

// SetCoverBuilder accumulates subsets, elements and memberships.
type SetCoverBuilder struct {
	b *bipartite.Builder
}

// NewSetCover returns a builder for an instance with s subsets and u
// elements (subset weights default 1).
func NewSetCover(s, u int) *SetCoverBuilder {
	return &SetCoverBuilder{b: bipartite.NewBuilder(s, u)}
}

// AddMember declares element u a member of subset s.
func (b *SetCoverBuilder) AddMember(s, u int) *SetCoverBuilder {
	b.b.AddEdge(s, u)
	return b
}

// SetWeight sets subset s's positive weight.
func (b *SetCoverBuilder) SetWeight(s int, w int64) *SetCoverBuilder {
	b.b.SetWeight(s, w)
	return b
}

// Build finalizes the instance.
func (b *SetCoverBuilder) Build() *SetCoverInstance {
	return &SetCoverInstance{ins: b.b.Build()}
}

// Subsets returns |S|.
func (i *SetCoverInstance) Subsets() int { return i.ins.S() }

// Elements returns |U|.
func (i *SetCoverInstance) Elements() int { return i.ins.U() }

// Memberships returns |A|, the number of (subset, element) incidences.
func (i *SetCoverInstance) Memberships() int { return i.ins.M() }

// Weight returns the weight of subset s.
func (i *SetCoverInstance) Weight(s int) int64 { return i.ins.Weight(s) }

// SetWeight replaces subset s's positive weight on a built instance.
// Weight mutations do not invalidate compiled SetCoverSolvers: the next
// run absorbs them into a fresh snapshot over the compiled topology.
func (i *SetCoverInstance) SetWeight(s int, w int64) { i.ins.SetWeight(s, w) }

// Weights returns a copy of the subset weight vector.
func (i *SetCoverInstance) Weights() []int64 { return i.ins.Weights() }

// Fingerprint returns a canonical identifier of the instance's
// structure — side sizes, membership table, port numbering — excluding
// weights; see Graph.Fingerprint for the solver-cache contract.
func (i *SetCoverInstance) Fingerprint() string { return i.ins.Fingerprint() }

// MaxFrequency returns f, the maximum number of subsets an element
// belongs to.
func (i *SetCoverInstance) MaxFrequency() int { return i.ins.MaxF() }

// MaxSubsetSize returns k, the maximum subset cardinality.
func (i *SetCoverInstance) MaxSubsetSize() int { return i.ins.MaxK() }

// MaxWeight returns W.
func (i *SetCoverInstance) MaxWeight() int64 { return i.ins.MaxWeight() }

// IsCover reports whether the marked subsets cover every element.
func (i *SetCoverInstance) IsCover(cover []bool) bool { return i.ins.IsCover(cover) }

// CoverWeight returns the total weight of the marked subsets.
func (i *SetCoverInstance) CoverWeight(cover []bool) int64 { return i.ins.CoverWeight(cover) }

// SetCoverSolver is the compiled set-cover session, the bipartite
// analogue of Solver: CompileSetCover builds the flat topology of the
// incidence graph H (and the shard partition for EngineSharded) once,
// and every SetCover run reuses it.  Safe for concurrent callers; see
// Solver for the sharing contract and the weight-snapshot model
// (UpdateWeights / WithWeights work identically, over subset weights).
type SetCoverSolver struct {
	ins     *SetCoverInstance
	cfg     config
	top     sim.Topology
	pool    *sim.Pool
	progs   *fracpack.ProgramPool // recycled node programs
	version uint64

	mu   sync.Mutex // serializes snapshot installs; loads are lock-free
	snap atomic.Pointer[scSnapshot]
}

// scSnapshot is the set-cover analogue of weightSnapshot: one immutable
// subset-weight assignment over the compiled incidence topology.
type scSnapshot struct {
	ins  *bipartite.Instance // weight view sharing the compiled structure
	w    []int64
	srcW uint64 // source instance's WeightVersion absorbed by this snapshot
}

func scSnapshotFromInstance(ins *bipartite.Instance) *scSnapshot {
	w := ins.Weights()
	return &scSnapshot{ins: ins.WeightView(w), w: w, srcW: ins.WeightVersion()}
}

// CompileSetCover validates opts against ins and builds a reusable
// SetCoverSolver.  It returns an error for invalid options, declared
// f/k/W bounds below the actual instance values, or an instance with an
// uncoverable element.
func CompileSetCover(ins *SetCoverInstance, opts ...Option) (*SetCoverSolver, error) {
	c := buildConfig(opts)
	if err := c.validate(); err != nil {
		return nil, err
	}
	if c.f != 0 && c.f < ins.MaxFrequency() {
		return nil, fmt.Errorf("anoncover: WithSetCoverBounds: f=%d below the actual maximum frequency %d",
			c.f, ins.MaxFrequency())
	}
	if c.k != 0 && c.k < ins.MaxSubsetSize() {
		return nil, fmt.Errorf("anoncover: WithSetCoverBounds: k=%d below the actual maximum subset size %d",
			c.k, ins.MaxSubsetSize())
	}
	if c.maxW != 0 && c.maxW < ins.MaxWeight() {
		return nil, fmt.Errorf("anoncover: WithWeightBound(%d) below the actual maximum weight %d",
			c.maxW, ins.MaxWeight())
	}
	for u := 0; u < ins.Elements(); u++ {
		if ins.ins.Deg(ins.ins.ElementNode(u)) == 0 {
			return nil, fmt.Errorf("anoncover: element %d belongs to no subset; the instance has no cover", u)
		}
	}
	flat := ins.ins.Flat()
	var top sim.Topology = flat
	if c.engine == EngineSharded {
		k := c.workers
		if k <= 0 {
			k = runtime.GOMAXPROCS(0)
		}
		st := shard.BuildK(flat, k)
		// Pin the session default to the clamped shard count so runs
		// reuse the pre-built partition (see Compile).
		c.workers = st.K()
		top = st
	}
	s := &SetCoverSolver{
		ins: ins, cfg: c, top: top, pool: sim.NewPool(),
		progs: &fracpack.ProgramPool{}, version: ins.ins.Version(),
	}
	s.snap.Store(scSnapshotFromInstance(ins.ins))
	return s, nil
}

// UpdateWeights installs a new immutable subset-weight snapshot against
// the compiled incidence topology; see Solver.UpdateWeights for the
// snapshot contract (in-flight runs finish on their snapshot, no
// topology recompile, vector copied and validated).
func (s *SetCoverSolver) UpdateWeights(w []int64) error {
	if err := checkWeights(w, s.ins.Subsets(), s.cfg.maxW, "subset"); err != nil {
		return err
	}
	cp := append([]int64(nil), w...)
	s.mu.Lock()
	s.snap.Store(&scSnapshot{ins: s.ins.ins.WeightView(cp), w: cp, srcW: s.ins.ins.WeightVersion()})
	s.mu.Unlock()
	return nil
}

// Weights returns a copy of the subset weights of the solver's current
// snapshot.
func (s *SetCoverSolver) Weights() []int64 {
	return append([]int64(nil), s.snap.Load().w...)
}

// snapshot resolves the weight snapshot for one run; the logic mirrors
// Solver.snapshot (pinned WithWeights vector, else the current
// snapshot, refreshed when the instance's weights were mutated).
func (s *SetCoverSolver) snapshot(c *config) (*scSnapshot, error) {
	if c.weights != nil {
		if err := checkWeights(c.weights, s.ins.Subsets(), c.maxW, "subset"); err != nil {
			return nil, err
		}
		if snap := s.snap.Load(); weightsEqual(snap.w, c.weights) {
			return snap, nil
		}
		cp := append([]int64(nil), c.weights...)
		return &scSnapshot{ins: s.ins.ins.WeightView(cp), w: cp, srcW: s.ins.ins.WeightVersion()}, nil
	}
	snap := s.snap.Load()
	if snap.srcW == s.ins.ins.WeightVersion() {
		return snap, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap = s.snap.Load()
	if snap.srcW == s.ins.ins.WeightVersion() {
		return snap, nil
	}
	fresh := scSnapshotFromInstance(s.ins.ins)
	if err := checkWeights(fresh.w, s.ins.Subsets(), c.maxW, "subset"); err != nil {
		return nil, err
	}
	s.snap.Store(fresh)
	return fresh, nil
}

// Instance returns the instance the solver was compiled for.
func (s *SetCoverSolver) Instance() *SetCoverInstance { return s.ins }

// Close releases the session's pooled worker goroutines; see
// Solver.Close.
func (s *SetCoverSolver) Close() error {
	s.pool.Close()
	return nil
}

// SetCover runs the Section 4 algorithm on the compiled topology: a
// deterministic f-approximation of minimum-weight set cover in
// O(f²k² + fk·log* W) rounds in the anonymous broadcast model.  The
// context is polled at every round barrier; per-run options extend the
// session defaults.
func (s *SetCoverSolver) SetCover(ctx context.Context, opts ...Option) (*SetCoverResult, error) {
	if v := s.ins.ins.Version(); v != s.version {
		return nil, fmt.Errorf("anoncover: instance structure mutated after CompileSetCover (version %d, compiled at %d); recompile the solver", v, s.version)
	}
	c := s.cfg
	for _, o := range opts {
		o(&c)
	}
	if err := c.validate(); err != nil {
		return nil, err
	}
	snap, err := s.snapshot(&c)
	if err != nil {
		return nil, err
	}
	res, err := fracpack.Run(snap.ins, fracpack.Options{
		Engine: c.engine.internal(), Workers: c.workers, ScrambleSeed: c.scramble,
		F: c.f, K: c.k, W: c.maxW, EarlyExit: c.earlyExit,
		Topology: s.top, Context: ctx, RoundBudget: c.budget,
		Observer: simObserver(c.observer), Pool: s.pool,
		NoWire: c.noWire, Programs: s.progs,
	})
	if err != nil {
		return nil, err
	}
	out := &SetCoverResult{
		Cover:           res.Cover,
		Packing:         make([]*big.Rat, len(res.Y)),
		Weight:          res.CoverWeight(snap.ins),
		Rounds:          res.Rounds,
		ScheduledRounds: res.ScheduledRounds,
		Messages:        res.Stats.Messages,
		Bytes:           res.Stats.Bytes,
		ins:             snap.ins,
		y:               res.Y,
	}
	for u, v := range res.Y {
		out.Packing[u] = v.Big()
	}
	return out, nil
}

// MaximalFractionalPacking is an alias for SetCover emphasising the
// primal object.
func (s *SetCoverSolver) MaximalFractionalPacking(ctx context.Context, opts ...Option) (*SetCoverResult, error) {
	return s.SetCover(ctx, opts...)
}

// Generators.

// RandomSetCover returns a random instance with s subsets and u elements
// where element frequency is at most f, subset size at most k, and
// weights are uniform in {1..maxW}.  Requires s*k >= u.
func RandomSetCover(s, u, f, k int, maxW, seed int64) *SetCoverInstance {
	return &SetCoverInstance{ins: bipartite.Random(s, u, f, k, maxW, seed)}
}

// SymmetricSetCover returns the paper's Figure 3 lower-bound instance:
// K_{p,p} with a fully symmetric port numbering.  Any deterministic
// anonymous algorithm outputs all p subsets while the optimum is 1.
func SymmetricSetCover(p int) *SetCoverInstance {
	return &SetCoverInstance{ins: bipartite.SymmetricKpp(p)}
}

// CycleSetCover returns the paper's Figure 4 reduction instance from a
// directed n-cycle with parameter p (f = k = p, optimum n/p).
func CycleSetCover(n, p int) *SetCoverInstance {
	return &SetCoverInstance{ins: bipartite.CycleReduction(n, p)}
}

// IncidenceSetCover converts a vertex cover instance into the set cover
// instance of Section 5: subsets are nodes, elements are edges, f = 2,
// k = Δ.
func IncidenceSetCover(g *Graph) *SetCoverInstance {
	return &SetCoverInstance{ins: bipartite.FromGraph(g.g)}
}

// ReadSetCover parses the text format produced by WriteSetCover.
func ReadSetCover(r io.Reader) (*SetCoverInstance, error) {
	ins, err := bipartite.Parse(r)
	if err != nil {
		return nil, err
	}
	return &SetCoverInstance{ins: ins}, nil
}

// WriteSetCover serializes the instance in the text format.
func WriteSetCover(w io.Writer, i *SetCoverInstance) error {
	return bipartite.Write(w, i.ins)
}
