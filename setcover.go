package anoncover

import (
	"io"

	"anoncover/internal/bipartite"
)

// SetCoverInstance is a weighted set-cover instance represented as the
// bipartite graph H = (S ∪ U, A) of paper Section 1.2; the input of
// SetCover.
type SetCoverInstance struct {
	ins *bipartite.Instance
}

// SetCoverBuilder accumulates subsets, elements and memberships.
type SetCoverBuilder struct {
	b *bipartite.Builder
}

// NewSetCover returns a builder for an instance with s subsets and u
// elements (subset weights default 1).
func NewSetCover(s, u int) *SetCoverBuilder {
	return &SetCoverBuilder{b: bipartite.NewBuilder(s, u)}
}

// AddMember declares element u a member of subset s.
func (b *SetCoverBuilder) AddMember(s, u int) *SetCoverBuilder {
	b.b.AddEdge(s, u)
	return b
}

// SetWeight sets subset s's positive weight.
func (b *SetCoverBuilder) SetWeight(s int, w int64) *SetCoverBuilder {
	b.b.SetWeight(s, w)
	return b
}

// Build finalizes the instance.
func (b *SetCoverBuilder) Build() *SetCoverInstance {
	return &SetCoverInstance{ins: b.b.Build()}
}

// Subsets returns |S|.
func (i *SetCoverInstance) Subsets() int { return i.ins.S() }

// Elements returns |U|.
func (i *SetCoverInstance) Elements() int { return i.ins.U() }

// Memberships returns |A|, the number of (subset, element) incidences.
func (i *SetCoverInstance) Memberships() int { return i.ins.M() }

// Weight returns the weight of subset s.
func (i *SetCoverInstance) Weight(s int) int64 { return i.ins.Weight(s) }

// MaxFrequency returns f, the maximum number of subsets an element
// belongs to.
func (i *SetCoverInstance) MaxFrequency() int { return i.ins.MaxF() }

// MaxSubsetSize returns k, the maximum subset cardinality.
func (i *SetCoverInstance) MaxSubsetSize() int { return i.ins.MaxK() }

// MaxWeight returns W.
func (i *SetCoverInstance) MaxWeight() int64 { return i.ins.MaxWeight() }

// IsCover reports whether the marked subsets cover every element.
func (i *SetCoverInstance) IsCover(cover []bool) bool { return i.ins.IsCover(cover) }

// CoverWeight returns the total weight of the marked subsets.
func (i *SetCoverInstance) CoverWeight(cover []bool) int64 { return i.ins.CoverWeight(cover) }

// Generators.

// RandomSetCover returns a random instance with s subsets and u elements
// where element frequency is at most f, subset size at most k, and
// weights are uniform in {1..maxW}.  Requires s*k >= u.
func RandomSetCover(s, u, f, k int, maxW, seed int64) *SetCoverInstance {
	return &SetCoverInstance{ins: bipartite.Random(s, u, f, k, maxW, seed)}
}

// SymmetricSetCover returns the paper's Figure 3 lower-bound instance:
// K_{p,p} with a fully symmetric port numbering.  Any deterministic
// anonymous algorithm outputs all p subsets while the optimum is 1.
func SymmetricSetCover(p int) *SetCoverInstance {
	return &SetCoverInstance{ins: bipartite.SymmetricKpp(p)}
}

// CycleSetCover returns the paper's Figure 4 reduction instance from a
// directed n-cycle with parameter p (f = k = p, optimum n/p).
func CycleSetCover(n, p int) *SetCoverInstance {
	return &SetCoverInstance{ins: bipartite.CycleReduction(n, p)}
}

// IncidenceSetCover converts a vertex cover instance into the set cover
// instance of Section 5: subsets are nodes, elements are edges, f = 2,
// k = Δ.
func IncidenceSetCover(g *Graph) *SetCoverInstance {
	return &SetCoverInstance{ins: bipartite.FromGraph(g.g)}
}

// ReadSetCover parses the text format produced by WriteSetCover.
func ReadSetCover(r io.Reader) (*SetCoverInstance, error) {
	ins, err := bipartite.Parse(r)
	if err != nil {
		return nil, err
	}
	return &SetCoverInstance{ins: ins}, nil
}

// WriteSetCover serializes the instance in the text format.
func WriteSetCover(w io.Writer, i *SetCoverInstance) error {
	return bipartite.Write(w, i.ins)
}
