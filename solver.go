package anoncover

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"anoncover/internal/core/bcastvc"
	"anoncover/internal/core/edgepack"
	"anoncover/internal/graph"
	"anoncover/internal/shard"
	"anoncover/internal/sim"
)

// RoundInfo is the per-round progress snapshot streamed to a
// WithObserver callback after each completed round.  Messages and Bytes
// are cumulative through the reported round, whatever the engine or
// worker count.
type RoundInfo struct {
	Round    int   // 1-based round just completed
	Total    int   // rounds in this run's schedule
	Messages int64 // messages delivered through this round
	Bytes    int64 // payload bytes delivered through this round
}

// ErrRoundBudget is returned by a run whose schedule needed more rounds
// than its WithRoundBudget allowed.  The run stopped at the budget
// boundary; no result is produced.
var ErrRoundBudget = sim.ErrRoundBudget

// Solver is a compiled vertex-cover session: Compile builds the flat
// CSR topology, the shard partition (for EngineSharded) and a pool of
// reusable execution resources once, and every run on the Solver reuses
// them.  A Solver is safe for concurrent callers — runs check mutable
// state (inboxes, halo buffers, worker pools) out of internal pools and
// share only the immutable compiled topology.
//
// The graph's structure must not be mutated (ShufflePorts) after
// Compile; runs on a structurally stale Solver return an error rather
// than silently using the old topology.  Weights are snapshot state,
// not structure: UpdateWeights installs a new immutable weight snapshot
// against the same compiled topology, weight mutations of the graph
// itself (SetWeight, Weigh*) are absorbed into a fresh snapshot on the
// next run, and WithWeights pins a single run to an explicit weight
// vector.  In-flight runs always finish on the snapshot they started
// with.
type Solver struct {
	g       *Graph
	cfg     config
	top     sim.Topology // *graph.FlatTopology, or *shard.Topology for EngineSharded
	pool    *sim.Pool
	progs   *edgepack.ProgramPool // recycled VertexCover node programs
	bprogs  *bcastvc.ProgramPool  // recycled VertexCoverBroadcast node programs
	version uint64

	mu   sync.Mutex // serializes snapshot installs; loads are lock-free
	snap atomic.Pointer[weightSnapshot]
}

// weightSnapshot is one immutable weight assignment over a compiled
// topology.  Runs resolve a snapshot once at their start and use its
// view graph throughout — environment construction, result assembly,
// Verify — so a concurrent UpdateWeights never tears a run.
type weightSnapshot struct {
	g *graph.G // weight view sharing the compiled structure
	w []int64  // the weights the view carries (never mutated)
	// srcW is the source graph's WeightVersion this snapshot absorbed;
	// a run whose graph has moved past it refreshes the snapshot from
	// the graph's current weights instead of erroring.
	srcW uint64
}

// snapshotFromGraph copies g's current weights into a fresh snapshot.
func snapshotFromGraph(g *graph.G) *weightSnapshot {
	w := g.Weights()
	return &weightSnapshot{g: g.WeightView(w), w: w, srcW: g.WeightVersion()}
}

// checkWeights validates an explicit weight vector against the solver's
// shape and declared bound.
func checkWeights(w []int64, n int, maxW int64, what string) error {
	if len(w) != n {
		return fmt.Errorf("anoncover: %d weights for %d %ss", len(w), n, what)
	}
	for i, x := range w {
		if x <= 0 {
			return fmt.Errorf("anoncover: non-positive weight %d at %s %d", x, what, i)
		}
		if maxW != 0 && x > maxW {
			return fmt.Errorf("anoncover: weight %d at %s %d above the declared WithWeightBound(%d)", x, what, i, maxW)
		}
	}
	return nil
}

// mustCompile unwraps Compile for the panicking one-shot wrappers.
// Errors already carry their package prefix.
func mustCompile(s *Solver, err error) *Solver {
	if err != nil {
		panic(err.Error())
	}
	return s
}

// Compile validates opts against g and builds a reusable Solver: the
// flat CSR topology, the degree-balanced shard partition when the
// engine is EngineSharded, and the session's execution pools.  Options
// given here become the session defaults; each run may extend or
// override them.
func Compile(g *Graph, opts ...Option) (*Solver, error) {
	c := buildConfig(opts)
	if err := c.validate(); err != nil {
		return nil, err
	}
	if c.delta != 0 && c.delta < g.MaxDegree() {
		return nil, fmt.Errorf("anoncover: WithDegreeBound(%d) below the actual maximum degree %d",
			c.delta, g.MaxDegree())
	}
	if c.maxW != 0 && c.maxW < g.MaxWeight() {
		return nil, fmt.Errorf("anoncover: WithWeightBound(%d) below the actual maximum weight %d",
			c.maxW, g.MaxWeight())
	}
	flat := g.g.Flat()
	var top sim.Topology = flat
	if c.engine == EngineSharded {
		k := c.workers
		if k <= 0 {
			k = runtime.GOMAXPROCS(0)
		}
		st := shard.BuildK(flat, k)
		// Snapshot the clamped shard count as the session default so
		// runs match the pre-built partition exactly — a mismatched
		// count would silently re-partition on every run.  (Sharding
		// is an execution detail, so an explicit per-run WithWorkers
		// override stays legal; it just pays for its own partition.)
		c.workers = st.K()
		top = st
	}
	s := &Solver{
		g: g, cfg: c, top: top, pool: sim.NewPool(),
		progs: &edgepack.ProgramPool{}, bprogs: &bcastvc.ProgramPool{},
		version: g.g.Version(),
	}
	s.snap.Store(snapshotFromGraph(g.g))
	return s, nil
}

// UpdateWeights installs a new immutable weight snapshot: subsequent
// runs use exactly these weights against the compiled topology — no
// recompile of the CSR view, shard partition, wire tables or pools —
// while in-flight runs finish on the snapshot they started with.  The
// vector is copied; it must have one positive weight per node and
// respect a declared WithWeightBound.  Any pending weight mutations of
// the underlying graph are superseded by the explicit snapshot.
func (s *Solver) UpdateWeights(w []int64) error {
	if err := checkWeights(w, s.g.N(), s.cfg.maxW, "node"); err != nil {
		return err
	}
	cp := append([]int64(nil), w...)
	s.mu.Lock()
	s.snap.Store(&weightSnapshot{g: s.g.g.WeightView(cp), w: cp, srcW: s.g.g.WeightVersion()})
	s.mu.Unlock()
	return nil
}

// Weights returns a copy of the weight vector of the solver's current
// snapshot — what a run started now would use.
func (s *Solver) Weights() []int64 {
	return append([]int64(nil), s.snap.Load().w...)
}

// snapshot resolves the weight snapshot for one run.  With pinned
// per-run weights (WithWeights) it reuses the current snapshot when the
// vectors match and otherwise builds a run-local view without
// installing it; with no pin it returns the current snapshot, first
// refreshing it when the graph's weights have been mutated since it was
// taken (weight mutation is served, not rejected — only structural
// mutation invalidates a Solver).
func (s *Solver) snapshot(c *config) (*weightSnapshot, error) {
	if c.weights != nil {
		if err := checkWeights(c.weights, s.g.N(), c.maxW, "node"); err != nil {
			return nil, err
		}
		if snap := s.snap.Load(); weightsEqual(snap.w, c.weights) {
			return snap, nil
		}
		cp := append([]int64(nil), c.weights...)
		return &weightSnapshot{g: s.g.g.WeightView(cp), w: cp, srcW: s.g.g.WeightVersion()}, nil
	}
	snap := s.snap.Load()
	if snap.srcW == s.g.g.WeightVersion() {
		return snap, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap = s.snap.Load()
	if snap.srcW == s.g.g.WeightVersion() {
		return snap, nil
	}
	fresh := snapshotFromGraph(s.g.g)
	if err := checkWeights(fresh.w, s.g.N(), c.maxW, "node"); err != nil {
		return nil, err
	}
	s.snap.Store(fresh)
	return fresh, nil
}

// weightsEqual reports whether two weight vectors are identical.
func weightsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, x := range a {
		if x != b[i] {
			return false
		}
	}
	return true
}

// runConfig layers per-run options over the session defaults and
// re-validates, and rejects runs on a Solver whose graph has been
// structurally mutated since Compile (weight mutations do not
// invalidate a Solver; they refresh its snapshot — see snapshot).
func (s *Solver) runConfig(opts []Option) (config, error) {
	if v := s.g.g.Version(); v != s.version {
		return config{}, fmt.Errorf("anoncover: graph structure mutated after Compile (version %d, compiled at %d); recompile the solver", v, s.version)
	}
	c := s.cfg
	for _, o := range opts {
		o(&c)
	}
	if err := c.validate(); err != nil {
		return config{}, err
	}
	return c, nil
}

// Graph returns the graph the Solver was compiled for.
func (s *Solver) Graph() *Graph { return s.g }

// Close releases the session's pooled worker goroutines.  It is
// optional but recommended for long-lived processes that compile many
// solvers; runs issued after Close still work, paying the per-run
// setup cost again.
func (s *Solver) Close() error {
	s.pool.Close()
	return nil
}

// simObserver adapts a public observer to the simulator's callback.
func simObserver(fn func(RoundInfo)) func(sim.RoundInfo) {
	if fn == nil {
		return nil
	}
	return func(ri sim.RoundInfo) { fn(RoundInfo(ri)) }
}

// VertexCover runs the Section 3 algorithm (port-numbering model) on
// the compiled topology.  The context is polled at every round barrier;
// per-run options extend the session defaults.
func (s *Solver) VertexCover(ctx context.Context, opts ...Option) (*VertexCoverResult, error) {
	c, err := s.runConfig(opts)
	if err != nil {
		return nil, err
	}
	snap, err := s.snapshot(&c)
	if err != nil {
		return nil, err
	}
	res, err := edgepack.Run(snap.g, edgepack.Options{
		Engine: c.engine.internal(), Workers: c.workers, Delta: c.delta, W: c.maxW,
		Topology: s.top, Context: ctx, RoundBudget: c.budget,
		Observer: simObserver(c.observer), Pool: s.pool,
		NoWire: c.noWire, Programs: s.progs,
	})
	if err != nil {
		return nil, err
	}
	return newVCResult(snap.g, res.Y, res.Cover, res.Rounds, res.Stats), nil
}

// MaximalEdgePacking is an alias for VertexCover emphasising the primal
// object.
func (s *Solver) MaximalEdgePacking(ctx context.Context, opts ...Option) (*VertexCoverResult, error) {
	return s.VertexCover(ctx, opts...)
}

// VertexCoverBroadcast runs the Section 5 algorithm (broadcast model)
// on the compiled topology, with the same guarantee as VertexCover at
// O(Δ² + Δ·log* W) rounds.  WithDegreeBound and WithWeightBound inflate
// the schedule exactly as in the port-numbering model.
func (s *Solver) VertexCoverBroadcast(ctx context.Context, opts ...Option) (*VertexCoverResult, error) {
	c, err := s.runConfig(opts)
	if err != nil {
		return nil, err
	}
	snap, err := s.snapshot(&c)
	if err != nil {
		return nil, err
	}
	res, err := bcastvc.Run(snap.g, bcastvc.Options{
		Engine: c.engine.internal(), Workers: c.workers, ScrambleSeed: c.scramble,
		Delta: c.delta, W: c.maxW,
		Topology: s.top, Context: ctx, RoundBudget: c.budget,
		Observer: simObserver(c.observer), Pool: s.pool,
		NoWire: c.noWire, Programs: s.bprogs,
	})
	if err != nil {
		return nil, err
	}
	return newVCResult(snap.g, res.Y, res.Cover, res.Rounds, res.Stats), nil
}
