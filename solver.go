package anoncover

import (
	"context"
	"fmt"
	"runtime"

	"anoncover/internal/core/bcastvc"
	"anoncover/internal/core/edgepack"
	"anoncover/internal/shard"
	"anoncover/internal/sim"
)

// RoundInfo is the per-round progress snapshot streamed to a
// WithObserver callback after each completed round.  Messages and Bytes
// are cumulative through the reported round, whatever the engine or
// worker count.
type RoundInfo struct {
	Round    int   // 1-based round just completed
	Total    int   // rounds in this run's schedule
	Messages int64 // messages delivered through this round
	Bytes    int64 // payload bytes delivered through this round
}

// ErrRoundBudget is returned by a run whose schedule needed more rounds
// than its WithRoundBudget allowed.  The run stopped at the budget
// boundary; no result is produced.
var ErrRoundBudget = sim.ErrRoundBudget

// Solver is a compiled vertex-cover session: Compile builds the flat
// CSR topology, the shard partition (for EngineSharded) and a pool of
// reusable execution resources once, and every run on the Solver reuses
// them.  A Solver is safe for concurrent callers — runs check mutable
// state (inboxes, halo buffers, worker pools) out of internal pools and
// share only the immutable compiled topology.
//
// The graph must not be mutated (SetWeight, ShufflePorts, Weigh*) after
// Compile; runs on a stale Solver return an error rather than silently
// using the old topology or weights.
type Solver struct {
	g       *Graph
	cfg     config
	top     sim.Topology // *graph.FlatTopology, or *shard.Topology for EngineSharded
	pool    *sim.Pool
	progs   *edgepack.ProgramPool // recycled VertexCover node programs
	bprogs  *bcastvc.ProgramPool  // recycled VertexCoverBroadcast node programs
	version uint64
}

// mustCompile unwraps Compile for the panicking one-shot wrappers.
// Errors already carry their package prefix.
func mustCompile(s *Solver, err error) *Solver {
	if err != nil {
		panic(err.Error())
	}
	return s
}

// Compile validates opts against g and builds a reusable Solver: the
// flat CSR topology, the degree-balanced shard partition when the
// engine is EngineSharded, and the session's execution pools.  Options
// given here become the session defaults; each run may extend or
// override them.
func Compile(g *Graph, opts ...Option) (*Solver, error) {
	c := buildConfig(opts)
	if err := c.validate(); err != nil {
		return nil, err
	}
	if c.delta != 0 && c.delta < g.MaxDegree() {
		return nil, fmt.Errorf("anoncover: WithDegreeBound(%d) below the actual maximum degree %d",
			c.delta, g.MaxDegree())
	}
	if c.maxW != 0 && c.maxW < g.MaxWeight() {
		return nil, fmt.Errorf("anoncover: WithWeightBound(%d) below the actual maximum weight %d",
			c.maxW, g.MaxWeight())
	}
	flat := g.g.Flat()
	var top sim.Topology = flat
	if c.engine == EngineSharded {
		k := c.workers
		if k <= 0 {
			k = runtime.GOMAXPROCS(0)
		}
		st := shard.BuildK(flat, k)
		// Snapshot the clamped shard count as the session default so
		// runs match the pre-built partition exactly — a mismatched
		// count would silently re-partition on every run.  (Sharding
		// is an execution detail, so an explicit per-run WithWorkers
		// override stays legal; it just pays for its own partition.)
		c.workers = st.K()
		top = st
	}
	return &Solver{
		g: g, cfg: c, top: top, pool: sim.NewPool(),
		progs: &edgepack.ProgramPool{}, bprogs: &bcastvc.ProgramPool{},
		version: g.g.Version(),
	}, nil
}

// runConfig layers per-run options over the session defaults and
// re-validates, and rejects runs on a Solver whose graph has been
// mutated since Compile.
func (s *Solver) runConfig(opts []Option) (config, error) {
	if v := s.g.g.Version(); v != s.version {
		return config{}, fmt.Errorf("anoncover: graph mutated after Compile (version %d, compiled at %d); recompile the solver", v, s.version)
	}
	c := s.cfg
	for _, o := range opts {
		o(&c)
	}
	if err := c.validate(); err != nil {
		return config{}, err
	}
	return c, nil
}

// Graph returns the graph the Solver was compiled for.
func (s *Solver) Graph() *Graph { return s.g }

// Close releases the session's pooled worker goroutines.  It is
// optional but recommended for long-lived processes that compile many
// solvers; runs issued after Close still work, paying the per-run
// setup cost again.
func (s *Solver) Close() error {
	s.pool.Close()
	return nil
}

// simObserver adapts a public observer to the simulator's callback.
func simObserver(fn func(RoundInfo)) func(sim.RoundInfo) {
	if fn == nil {
		return nil
	}
	return func(ri sim.RoundInfo) { fn(RoundInfo(ri)) }
}

// VertexCover runs the Section 3 algorithm (port-numbering model) on
// the compiled topology.  The context is polled at every round barrier;
// per-run options extend the session defaults.
func (s *Solver) VertexCover(ctx context.Context, opts ...Option) (*VertexCoverResult, error) {
	c, err := s.runConfig(opts)
	if err != nil {
		return nil, err
	}
	res, err := edgepack.Run(s.g.g, edgepack.Options{
		Engine: c.engine.internal(), Workers: c.workers, Delta: c.delta, W: c.maxW,
		Topology: s.top, Context: ctx, RoundBudget: c.budget,
		Observer: simObserver(c.observer), Pool: s.pool,
		NoWire: c.noWire, Programs: s.progs,
	})
	if err != nil {
		return nil, err
	}
	return newVCResult(s.g.g, res.Y, res.Cover, res.Rounds, res.Stats), nil
}

// MaximalEdgePacking is an alias for VertexCover emphasising the primal
// object.
func (s *Solver) MaximalEdgePacking(ctx context.Context, opts ...Option) (*VertexCoverResult, error) {
	return s.VertexCover(ctx, opts...)
}

// VertexCoverBroadcast runs the Section 5 algorithm (broadcast model)
// on the compiled topology, with the same guarantee as VertexCover at
// O(Δ² + Δ·log* W) rounds.  WithDegreeBound and WithWeightBound inflate
// the schedule exactly as in the port-numbering model.
func (s *Solver) VertexCoverBroadcast(ctx context.Context, opts ...Option) (*VertexCoverResult, error) {
	c, err := s.runConfig(opts)
	if err != nil {
		return nil, err
	}
	res, err := bcastvc.Run(s.g.g, bcastvc.Options{
		Engine: c.engine.internal(), Workers: c.workers, ScrambleSeed: c.scramble,
		Delta: c.delta, W: c.maxW,
		Topology: s.top, Context: ctx, RoundBudget: c.budget,
		Observer: simObserver(c.observer), Pool: s.pool,
		NoWire: c.noWire, Programs: s.bprogs,
	})
	if err != nil {
		return nil, err
	}
	return newVCResult(s.g.g, res.Y, res.Cover, res.Rounds, res.Stats), nil
}
