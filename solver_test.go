package anoncover

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// mustSameVC asserts two vertex cover results are bit-identical in
// every engine-independent field.
func mustSameVC(t *testing.T, what string, ref, got *VertexCoverResult) {
	t.Helper()
	if got.Weight != ref.Weight || got.Rounds != ref.Rounds ||
		got.Messages != ref.Messages || got.Bytes != ref.Bytes {
		t.Fatalf("%s: scalar fields diverge: %+v vs %+v", what,
			[4]int64{got.Weight, int64(got.Rounds), got.Messages, got.Bytes},
			[4]int64{ref.Weight, int64(ref.Rounds), ref.Messages, ref.Bytes})
	}
	for v := range ref.Cover {
		if got.Cover[v] != ref.Cover[v] {
			t.Fatalf("%s: cover diverges at node %d", what, v)
		}
	}
	for e := range ref.Packing {
		if got.Packing[e].Cmp(ref.Packing[e]) != 0 {
			t.Fatalf("%s: packing diverges at edge %d", what, e)
		}
	}
}

func mustSameSC(t *testing.T, what string, ref, got *SetCoverResult) {
	t.Helper()
	if got.Weight != ref.Weight || got.Rounds != ref.Rounds ||
		got.ScheduledRounds != ref.ScheduledRounds ||
		got.Messages != ref.Messages || got.Bytes != ref.Bytes {
		t.Fatalf("%s: scalar fields diverge", what)
	}
	for s := range ref.Cover {
		if got.Cover[s] != ref.Cover[s] {
			t.Fatalf("%s: cover diverges at subset %d", what, s)
		}
	}
	for u := range ref.Packing {
		if got.Packing[u].Cmp(ref.Packing[u]) != 0 {
			t.Fatalf("%s: packing diverges at element %d", what, u)
		}
	}
}

// solverEngineVariants are the engine configurations every compiled
// solver is exercised under; EngineSharded at two shard counts is the
// configuration CI's solver-path equivalence step exists for.
func solverEngineVariants() []struct {
	name string
	opts []Option
} {
	return []struct {
		name string
		opts []Option
	}{
		{"sequential", []Option{WithEngine(EngineSequential)}},
		{"sequential-boxed", []Option{WithEngine(EngineSequential), WithoutWirePath()}},
		{"parallel-2", []Option{WithEngine(EngineParallel), WithWorkers(2)}},
		{"sharded-2", []Option{WithEngine(EngineSharded), WithWorkers(2)}},
		{"sharded-4", []Option{WithEngine(EngineSharded), WithWorkers(4)}},
		{"sharded-4-boxed", []Option{WithEngine(EngineSharded), WithWorkers(4), WithoutWirePath()}},
		{"csp", []Option{WithEngine(EngineCSP)}},
	}
}

// TestEquivSolverVertexCover: one compiled Solver serves repeated
// VertexCover runs on every engine, bit-identical to the one-shot API.
func TestEquivSolverVertexCover(t *testing.T) {
	g := RandomGraph(60, 120, 6, 31)
	g.WeighRandom(25, 32)
	ref := VertexCover(g)
	s, err := Compile(g, WithEngine(EngineSharded), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, ev := range solverEngineVariants() {
		t.Run(ev.name, func(t *testing.T) {
			for rep := 0; rep < 2; rep++ {
				got, err := s.VertexCover(context.Background(), ev.opts...)
				if err != nil {
					t.Fatal(err)
				}
				mustSameVC(t, ev.name, ref, got)
				if err := got.Verify(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestEquivSolverVertexCoverBroadcast: the broadcast-model algorithm
// through a shared Solver, across engines and scramble seeds.
func TestEquivSolverVertexCoverBroadcast(t *testing.T) {
	g := RandomGraph(14, 18, 4, 33)
	g.WeighRandom(6, 34)
	ref := VertexCoverBroadcast(g)
	s, err := Compile(g, WithEngine(EngineSharded), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, ev := range solverEngineVariants() {
		t.Run(ev.name, func(t *testing.T) {
			got, err := s.VertexCoverBroadcast(context.Background(), append(ev.opts, WithScrambleSeed(42))...)
			if err != nil {
				t.Fatal(err)
			}
			mustSameVC(t, ev.name, ref, got)
		})
	}
}

// TestEquivSolverSetCover: the set-cover algorithm through a shared
// compiled SetCoverSolver, across engines.
func TestEquivSolverSetCover(t *testing.T) {
	ins := RandomSetCover(10, 24, 3, 6, 12, 35)
	ref := SetCover(ins)
	s, err := CompileSetCover(ins, WithEngine(EngineSharded), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, ev := range solverEngineVariants() {
		t.Run(ev.name, func(t *testing.T) {
			for rep := 0; rep < 2; rep++ {
				got, err := s.SetCover(context.Background(), ev.opts...)
				if err != nil {
					t.Fatal(err)
				}
				mustSameSC(t, ev.name, ref, got)
			}
		})
	}
}

// TestEquivSolverConcurrent: a shared Solver must be race-safe — many
// goroutines issuing runs concurrently all get the reference result.
// CI runs this under -race.
func TestEquivSolverConcurrent(t *testing.T) {
	g := RandomGraph(50, 100, 5, 36)
	g.WeighRandom(20, 37)
	ref := VertexCover(g)
	s, err := Compile(g, WithEngine(EngineSharded), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	variants := solverEngineVariants()
	var wg sync.WaitGroup
	errc := make(chan error, 24)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				ev := variants[(i+rep)%len(variants)]
				got, err := s.VertexCover(context.Background(), ev.opts...)
				if err != nil {
					errc <- err
					return
				}
				if got.Weight != ref.Weight {
					errc <- errors.New("concurrent run diverged from reference")
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

func TestCompileOptionValidation(t *testing.T) {
	g := RandomGraph(20, 40, 5, 38)
	g.WeighRandom(9, 39)
	cases := []struct {
		name string
		opts []Option
	}{
		{"negative workers", []Option{WithWorkers(-1)}},
		{"unknown engine", []Option{WithEngine(Engine(42))}},
		{"degree bound below actual", []Option{WithDegreeBound(1)}},
		{"weight bound below actual", []Option{WithWeightBound(1)}},
		{"negative budget", []Option{WithRoundBudget(-1)}},
	}
	for _, c := range cases {
		if _, err := Compile(g, c.opts...); err == nil {
			t.Errorf("Compile(%s): no error", c.name)
		}
	}
	ins := RandomSetCover(8, 16, 3, 5, 6, 40)
	scCases := []struct {
		name string
		opts []Option
	}{
		{"f below actual", []Option{WithSetCoverBounds(1, 8)}},
		{"k below actual", []Option{WithSetCoverBounds(4, 1)}},
		{"negative workers", []Option{WithWorkers(-2)}},
		{"unknown engine", []Option{WithEngine(Engine(-1))}},
	}
	for _, c := range scCases {
		if _, err := CompileSetCover(ins, c.opts...); err == nil {
			t.Errorf("CompileSetCover(%s): no error", c.name)
		}
	}
	// Run-level options are re-validated per run.
	s, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.VertexCover(context.Background(), WithWorkers(-3)); err == nil {
		t.Error("run with negative workers: no error")
	}
	if _, err := s.VertexCover(context.Background(), WithEngine(Engine(99))); err == nil {
		t.Error("run with unknown engine: no error")
	}
}

func TestSolverStaleAfterMutation(t *testing.T) {
	g := RandomGraph(20, 40, 5, 41)
	s, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.VertexCover(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Weight-only mutation no longer invalidates the solver: the next
	// run absorbs the new weights into a fresh snapshot and matches a
	// from-scratch run bit for bit.
	g.WeighRandom(9, 42)
	got, err := s.VertexCover(context.Background())
	if err != nil {
		t.Fatalf("run after weight mutation: %v", err)
	}
	fresh := VertexCover(RandomGraphWeighed(t))
	if got.Weight != fresh.Weight || !sameBools(got.Cover, fresh.Cover) {
		t.Fatal("post-mutation run differs from a fresh compile on the same weights")
	}
	// Structural mutation still errors.
	g.ShufflePorts(7)
	if _, err := s.VertexCover(context.Background()); err == nil {
		t.Fatal("run on a structurally mutated graph: no error")
	}
	if _, err := s.SelfStabVertexCover(); err == nil {
		t.Fatal("self-stab system from a stale solver: no error")
	}
}

// RandomGraphWeighed rebuilds the exact graph TestSolverStaleAfterMutation
// mutated, for the from-scratch comparison.
func RandomGraphWeighed(t *testing.T) *Graph {
	t.Helper()
	g := RandomGraph(20, 40, 5, 41)
	g.WeighRandom(9, 42)
	return g
}

func sameBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSolverSelfStab: the session's self-stabilising transformation
// honours the compiled Δ/W bounds (the replay schedule follows them)
// and still stabilises to a verified result.
func TestSolverSelfStab(t *testing.T) {
	g := RandomGraph(30, 60, 5, 49)
	g.WeighRandom(9, 50)
	s, err := Compile(g, WithDegreeBound(8), WithWeightBound(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	sys, err := s.SelfStabVertexCover()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Rounds() != PredictedVertexCoverRounds(8, 1<<20) {
		t.Fatalf("self-stab schedule %d, want the declared-bounds schedule %d",
			sys.Rounds(), PredictedVertexCoverRounds(8, 1<<20))
	}
	if _, ok := sys.Stabilise(sys.Rounds() + 1); !ok {
		t.Fatal("did not stabilise within T+1 steps")
	}
}

func TestSolverRoundBudget(t *testing.T) {
	g := RandomGraph(30, 60, 5, 43)
	g.WeighRandom(9, 44)
	s, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	need := PredictedVertexCoverRounds(g.MaxDegree(), g.MaxWeight())
	if _, err := s.VertexCover(context.Background(), WithRoundBudget(need-1)); !errors.Is(err, ErrRoundBudget) {
		t.Fatalf("budget %d for a %d-round schedule: err = %v, want ErrRoundBudget", need-1, need, err)
	}
	res, err := s.VertexCover(context.Background(), WithRoundBudget(need))
	if err != nil {
		t.Fatalf("sufficient budget: %v", err)
	}
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestSolverObserverAndCancel(t *testing.T) {
	g := RandomGraph(30, 60, 5, 45)
	g.WeighRandom(9, 46)
	s, err := Compile(g, WithEngine(EngineSharded), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var seen []RoundInfo
	res, err := s.VertexCover(context.Background(), WithObserver(func(ri RoundInfo) {
		seen = append(seen, ri)
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != res.Rounds {
		t.Fatalf("observer fired %d times over %d rounds", len(seen), res.Rounds)
	}
	last := seen[len(seen)-1]
	if last.Round != res.Rounds || last.Total != res.Rounds ||
		last.Messages != res.Messages || last.Bytes != res.Bytes {
		t.Fatalf("final observation %+v does not match result (rounds %d, messages %d, bytes %d)",
			last, res.Rounds, res.Messages, res.Bytes)
	}
	// Cancellation from inside the observer stops the run at the next
	// round barrier.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fired := 0
	_, err = s.VertexCover(ctx, WithObserver(func(ri RoundInfo) {
		fired++
		if ri.Round == 3 {
			cancel()
		}
	}))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if fired != 3 {
		t.Fatalf("run continued for %d rounds after cancellation at round 3", fired)
	}
}

// TestBroadcastDeclaredBounds: WithDegreeBound/WithWeightBound must
// reach the broadcast-model algorithm (they were silently ignored
// before the session API), inflating the schedule exactly as
// PredictedBroadcastVCRounds says.
func TestBroadcastDeclaredBounds(t *testing.T) {
	g := CycleGraph(8) // Δ = 2
	g.WeighRandom(5, 47)
	def := VertexCoverBroadcast(g)
	if def.Rounds != PredictedBroadcastVCRounds(2, g.MaxWeight()) {
		t.Fatalf("default rounds %d, want %d", def.Rounds, PredictedBroadcastVCRounds(2, g.MaxWeight()))
	}
	for _, c := range []struct {
		delta int
		w     int64
	}{
		{3, 0},
		{0, 1 << 20},
		{4, 1 << 20},
	} {
		delta, w := c.delta, c.w
		if delta == 0 {
			delta = g.MaxDegree()
		}
		if w == 0 {
			w = g.MaxWeight()
		}
		opts := []Option{}
		if c.delta != 0 {
			opts = append(opts, WithDegreeBound(c.delta))
		}
		if c.w != 0 {
			opts = append(opts, WithWeightBound(c.w))
		}
		res := VertexCoverBroadcast(g, opts...)
		want := PredictedBroadcastVCRounds(delta, w)
		if res.Rounds != want {
			t.Fatalf("Δ=%d W=%d: rounds %d, want %d", delta, w, res.Rounds, want)
		}
		if err := res.Verify(); err != nil {
			t.Fatalf("Δ=%d W=%d: %v", delta, w, err)
		}
	}
	// An inflated degree bound strictly grows the schedule (the Δ² term
	// dominates); a bound that were silently dropped would not.
	if got := VertexCoverBroadcast(g, WithDegreeBound(3)).Rounds; got <= def.Rounds {
		t.Fatalf("Δ=3: rounds %d did not exceed default %d", got, def.Rounds)
	}
}

// TestSetCoverEarlyExit: the public WithEarlyExit option stops the
// simulation once the packing is maximal; the outputs are unchanged and
// ScheduledRounds stays the honest deterministic cost.
func TestSetCoverEarlyExit(t *testing.T) {
	ins := RandomSetCover(15, 40, 3, 6, 9, 48)
	full := SetCover(ins)
	early := SetCover(ins, WithEarlyExit())
	if early.ScheduledRounds != full.ScheduledRounds {
		t.Fatalf("early exit changed ScheduledRounds: %d vs %d",
			early.ScheduledRounds, full.ScheduledRounds)
	}
	if early.Rounds > full.Rounds {
		t.Fatalf("early exit ran %d rounds, full schedule %d", early.Rounds, full.Rounds)
	}
	if err := early.Verify(); err != nil {
		t.Fatal(err)
	}
	for s := range full.Cover {
		if early.Cover[s] != full.Cover[s] {
			t.Fatalf("early exit changed the cover at subset %d", s)
		}
	}
	for u := range full.Packing {
		if early.Packing[u].Cmp(full.Packing[u]) != 0 {
			t.Fatalf("early exit changed the packing at element %d", u)
		}
	}
	// On a typical random instance the packing saturates well before
	// the worst-case schedule; the option should actually save rounds.
	if early.Rounds == full.Rounds {
		t.Logf("note: early exit saved no rounds on this instance (%d)", early.Rounds)
	}
}

// TestSolverUncoverableInstance: CompileSetCover refuses an instance
// with an uncovered element instead of failing mid-run.
func TestSolverUncoverableInstance(t *testing.T) {
	ins := NewSetCover(2, 2).AddMember(0, 0).Build() // element 1 uncovered
	if _, err := CompileSetCover(ins); err == nil {
		t.Fatal("uncoverable instance compiled without error")
	}
}
