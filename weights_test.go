package anoncover

import (
	"context"
	"math/rand"
	"sync"
	"testing"
)

// weightVector derives a deterministic positive weight vector.
func weightVector(n int, maxW, seed int64) []int64 {
	r := rand.New(rand.NewSource(seed))
	w := make([]int64, n)
	for i := range w {
		w[i] = 1 + r.Int63n(maxW)
	}
	return w
}

// TestEquivUpdateWeights is the weight-snapshot acceptance matrix: runs
// after UpdateWeights are bit-identical to a fresh Compile+run on the
// same weights, across sequential/parallel/sharded engines on both the
// wire and boxed delivery paths — with no recompile of the solver.
func TestEquivUpdateWeights(t *testing.T) {
	build := func() *Graph { return RandomGraph(60, 120, 6, 31) }
	s, err := Compile(build(), WithEngine(EngineSharded), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, seed := range []int64{71, 72, 73} {
		w := weightVector(s.Graph().N(), 25, seed)
		// Fresh from-scratch reference on an independently built graph.
		fresh := build()
		for v, x := range w {
			fresh.SetWeight(v, x)
		}
		ref := VertexCover(fresh)
		if err := s.UpdateWeights(w); err != nil {
			t.Fatal(err)
		}
		for _, ev := range solverEngineVariants() {
			got, err := s.VertexCover(context.Background(), ev.opts...)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, ev.name, err)
			}
			mustSameVC(t, ev.name, ref, got)
			if err := got.Verify(); err != nil {
				t.Fatalf("seed %d %s: %v", seed, ev.name, err)
			}
		}
	}
}

// TestEquivUpdateWeightsBroadcast: the broadcast-model algorithm rides
// the same snapshot (small instance — the history simulation is
// quadratic in Δ).
func TestEquivUpdateWeightsBroadcast(t *testing.T) {
	build := func() *Graph { return RandomGraph(14, 18, 4, 33) }
	s, err := Compile(build())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := weightVector(14, 6, 77)
	fresh := build()
	for v, x := range w {
		fresh.SetWeight(v, x)
	}
	ref := VertexCoverBroadcast(fresh)
	if err := s.UpdateWeights(w); err != nil {
		t.Fatal(err)
	}
	got, err := s.VertexCoverBroadcast(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	mustSameVC(t, "broadcast", ref, got)
}

// TestWithWeightsPinned: WithWeights pins one run without touching the
// session snapshot.
func TestWithWeightsPinned(t *testing.T) {
	g := RandomGraph(40, 80, 5, 51)
	g.WeighRandom(9, 52)
	base := VertexCover(g)
	s, err := Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	w := weightVector(g.N(), 30, 99)
	fresh := RandomGraph(40, 80, 5, 51)
	for v, x := range w {
		fresh.SetWeight(v, x)
	}
	ref := VertexCover(fresh)

	got, err := s.VertexCover(context.Background(), WithWeights(w))
	if err != nil {
		t.Fatal(err)
	}
	mustSameVC(t, "pinned", ref, got)

	// The session snapshot is untouched: a plain run still serves the
	// compile-time weights.
	plain, err := s.VertexCover(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	mustSameVC(t, "plain-after-pinned", base, plain)

	// Pinning the current snapshot's weights reuses it.
	same, err := s.VertexCover(context.Background(), WithWeights(s.Weights()))
	if err != nil {
		t.Fatal(err)
	}
	mustSameVC(t, "pinned-current", base, same)
}

// TestUpdateWeightsValidation: shape, positivity and declared-bound
// violations are errors, for both solver kinds.
func TestUpdateWeightsValidation(t *testing.T) {
	g := RandomGraph(20, 40, 5, 61)
	s, err := Compile(g, WithWeightBound(100))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.UpdateWeights(make([]int64, 3)); err == nil {
		t.Error("short weight vector accepted")
	}
	bad := weightVector(g.N(), 10, 1)
	bad[7] = 0
	if err := s.UpdateWeights(bad); err == nil {
		t.Error("zero weight accepted")
	}
	bad[7] = 101
	if err := s.UpdateWeights(bad); err == nil {
		t.Error("weight above declared WithWeightBound accepted")
	}
	bad[7] = 100
	if err := s.UpdateWeights(bad); err != nil {
		t.Errorf("weight at the declared bound rejected: %v", err)
	}
	if _, err := s.VertexCover(context.Background(), WithWeights(make([]int64, 3))); err == nil {
		t.Error("short pinned vector accepted")
	}

	ins := RandomSetCover(15, 40, 3, 6, 9, 62)
	sc, err := CompileSetCover(ins)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if err := sc.UpdateWeights(make([]int64, ins.Subsets()+1)); err == nil {
		t.Error("set-cover weight vector of wrong length accepted")
	}
}

// TestEquivUpdateWeightsSetCover: the set-cover snapshot path matches a
// fresh compile on the same subset weights, wire and boxed.
func TestEquivUpdateWeightsSetCover(t *testing.T) {
	build := func() *SetCoverInstance { return RandomSetCover(20, 60, 3, 8, 9, 81) }
	s, err := CompileSetCover(build(), WithEngine(EngineSharded), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, seed := range []int64{5, 6} {
		ins := build()
		w := weightVector(ins.Subsets(), 40, seed)
		for i, x := range w {
			ins.SetWeight(i, x)
		}
		ref := SetCover(ins)
		if err := s.UpdateWeights(w); err != nil {
			t.Fatal(err)
		}
		for _, ev := range solverEngineVariants() {
			got, err := s.SetCover(context.Background(), ev.opts...)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, ev.name, err)
			}
			mustSameSC(t, ev.name, ref, got)
		}
		// Instance-side weight mutation is absorbed the same way.
		for i, x := range w {
			s.Instance().SetWeight(i, x)
		}
		got, err := s.SetCover(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		mustSameSC(t, "instance-mutation", ref, got)
	}
}

// sameVC is the goroutine-safe twin of mustSameVC (t.Fatal must not be
// called off the test goroutine).
func sameVC(ref, got *VertexCoverResult) bool {
	if got.Weight != ref.Weight || got.Rounds != ref.Rounds ||
		got.Messages != ref.Messages || got.Bytes != ref.Bytes {
		return false
	}
	for v := range ref.Cover {
		if got.Cover[v] != ref.Cover[v] {
			return false
		}
	}
	for e := range ref.Packing {
		if got.Packing[e].Cmp(ref.Packing[e]) != 0 {
			return false
		}
	}
	return true
}

// TestUpdateWeightsSoak interleaves UpdateWeights, pinned and unpinned
// concurrent runs, and Close under -race, pinning that every pinned
// run's output is bit-identical to a fresh one-shot on its snapshot.
func TestUpdateWeightsSoak(t *testing.T) {
	const vectors = 4
	build := func() *Graph { return GridGraph(8, 8) }
	g := build()
	s, err := Compile(g, WithEngine(EngineParallel), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}

	ws := make([][]int64, vectors)
	refs := make([]*VertexCoverResult, vectors)
	for i := range ws {
		ws[i] = weightVector(g.N(), 12, int64(100+i))
		fresh := build()
		for v, x := range ws[i] {
			fresh.SetWeight(v, x)
		}
		refs[i] = VertexCover(fresh)
	}

	iters := 6
	if testing.Short() {
		iters = 2
	}
	var wg sync.WaitGroup
	for gor := 0; gor < 4; gor++ {
		wg.Add(1)
		go func(gor int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (gor + it) % vectors
				switch gor % 3 {
				case 0: // installer: runs see whatever snapshot is current
					if err := s.UpdateWeights(ws[i]); err != nil {
						t.Error(err)
						return
					}
					res, err := s.VertexCover(context.Background())
					if err != nil {
						t.Error(err)
						return
					}
					if err := res.Verify(); err != nil {
						t.Error(err)
						return
					}
				default: // pinned runs: must match their snapshot's reference exactly
					res, err := s.VertexCover(context.Background(), WithWeights(ws[i]))
					if err != nil {
						t.Error(err)
						return
					}
					if !sameVC(refs[i], res) {
						t.Errorf("pinned run on vector %d diverged from its fresh one-shot", i)
						return
					}
				}
			}
		}(gor)
	}
	wg.Wait()
	s.Close()
	// Runs after Close still serve correctly (paying setup again).
	res, err := s.VertexCover(context.Background(), WithWeights(ws[0]))
	if err != nil {
		t.Fatal(err)
	}
	mustSameVC(t, "after-close", refs[0], res)
}
